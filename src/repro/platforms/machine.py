"""Machine (supercomputer) descriptions and mount tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.platforms.storage import LayerKind, StorageLayer


class MountTable:
    """Longest-prefix path → storage-layer resolution.

    The Darshan runtime resolves each opened path to the file system it
    lives on (real Darshan does this from ``/proc/mounts``); the analyses
    then group records by layer. Paths that match no mount resolve to
    ``None`` (e.g. ``/dev/null``, container-local scratch) and are dropped
    from layer-based analyses, as the paper drops non-PFS/non-BB mounts.
    """

    def __init__(self, mounts: dict[str, StorageLayer]):
        for prefix in mounts:
            if not prefix.startswith("/"):
                raise ConfigurationError(f"mount prefix {prefix!r} must be absolute")
        # Longest prefixes first so /gpfs/alpine wins over /gpfs.
        self._mounts = sorted(mounts.items(), key=lambda kv: -len(kv[0]))

    def resolve(self, path: str) -> StorageLayer | None:
        """The layer a path lives on, or None for unmounted paths."""
        for prefix, layer in self._mounts:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                return layer
        return None

    def mounts(self) -> list[tuple[str, StorageLayer]]:
        return list(self._mounts)


@dataclass(frozen=True)
class Machine:
    """A supercomputer with its multi-layer I/O subsystem."""

    name: str
    #: e.g. "IBM AC922" or "Cray XC40".
    model: str
    compute_nodes: int
    cores_per_node: int
    gpus_per_node: int
    peak_flops: float
    #: Layers keyed by their stable key ("pfs", "insystem").
    layers: dict[str, StorageLayer] = field(default_factory=dict)
    #: Interconnect description (informational).
    interconnect: str = ""

    def __post_init__(self) -> None:
        if self.compute_nodes <= 0 or self.cores_per_node <= 0:
            raise ConfigurationError(f"{self.name}: node/core counts must be positive")
        kinds = [layer.kind for layer in self.layers.values()]
        if LayerKind.PFS not in kinds:
            raise ConfigurationError(f"{self.name}: a PFS layer is required")
        for key, layer in self.layers.items():
            if key != layer.key:
                raise ConfigurationError(
                    f"{self.name}: layer dict key {key!r} != layer.key {layer.key!r}"
                )

    @property
    def pfs(self) -> StorageLayer:
        """The parallel-file-system layer."""
        return self.layers["pfs"]

    @property
    def in_system(self) -> StorageLayer:
        """The in-system (burst buffer / node-local) layer."""
        return self.layers["insystem"]

    @property
    def total_cores(self) -> int:
        return self.compute_nodes * self.cores_per_node

    def mount_table(self) -> MountTable:
        """Mount table mapping each layer's mount point to the layer."""
        return MountTable({layer.mount_point: layer for layer in self.layers.values()})

    def layer_by_name(self, name: str) -> StorageLayer:
        """Look a layer up by deployment name (``"Alpine"``) or key."""
        for layer in self.layers.values():
            if layer.name.lower() == name.lower() or layer.key == name.lower():
                return layer
        raise KeyError(f"{self.name} has no layer named {name!r}")

    def describe(self) -> str:
        lines = [
            f"{self.name} ({self.model}): {self.compute_nodes} nodes, "
            f"{self.peak_flops / 1e15:.1f} PFLOPS, {self.interconnect}"
        ]
        for layer in self.layers.values():
            lines.append("  " + layer.describe())
        return "\n".join(lines)

"""Cori and its two-layer I/O subsystem (§2.1.2).

Facts encoded here come straight from the paper:

* Cray XC40, 2,388 Haswell + 9,688 KNL nodes, 30 PFLOPS.
* **CBB** (Cori Burst Buffer): Cray DataWarp, flash on service nodes,
  1.8 PB raw, 1.7 TB/s peak; job-exclusive namespaces; scheduler-integrated
  stage-in/out directives.
* **Cori Scratch**: Lustre, 30 PB usable, 700 GB/s peak, 5 MDSes,
  248 OSSes each managing one OST; default stripe count 1, stripe size
  1 MB; users may customize striping per file.
"""

from __future__ import annotations

from repro.platforms.machine import Machine
from repro.platforms.storage import LayerKind, Locality, StorageLayer
from repro.units import MiB, PB, GB, TB

#: Lustre defaults on Cori (§2.1.2). Stripe size is the 1 MiB Lustre default.
CORI_DEFAULT_STRIPE_SIZE = 1 * MiB
CORI_DEFAULT_STRIPE_COUNT = 1
CORI_OST_COUNT = 248
CORI_MDS_COUNT = 5

CORI_SCRATCH_MOUNT = "/global/cscratch1"
CBB_MOUNT = "/var/opt/cray/dws/mounts/batch"


def cori() -> Machine:
    """Build the Cori platform description."""
    cbb = StorageLayer(
        key="insystem",
        name="CBB",
        kind=LayerKind.IN_SYSTEM,
        locality=Locality.SYSTEM_LOCAL,
        technology="DataWarp",
        capacity_bytes=int(1.8 * PB),
        peak_read_bw=1.7 * TB,
        peak_write_bw=1.7 * TB,
        mount_point=CBB_MOUNT,
        server_count=288,  # burst-buffer service nodes
        base_latency=80e-6,
        params={
            "stdio_buffer": 512 * 1024,
            "granularity": 20 * 1000**3,  # DataWarp allocation granularity, ~20 GB
            "namespace": "job-exclusive (DataWarp)",
            "scheduler_integration": True,
        },
    )
    scratch = StorageLayer(
        key="pfs",
        name="Cori Scratch",
        kind=LayerKind.PFS,
        locality=Locality.CENTER_WIDE,
        technology="Lustre",
        capacity_bytes=30 * PB,
        peak_read_bw=700 * GB,
        peak_write_bw=700 * GB,
        mount_point=CORI_SCRATCH_MOUNT,
        server_count=CORI_OST_COUNT,
        base_latency=400e-6,  # Lustre RPC + MDS lookup
        params={
            "stripe_size": CORI_DEFAULT_STRIPE_SIZE,
            "stdio_buffer": 1 * MiB,  # Lustre st_blksize = stripe size
            "stripe_count": CORI_DEFAULT_STRIPE_COUNT,
            "ost_count": CORI_OST_COUNT,
            "mds_count": CORI_MDS_COUNT,
        },
    )
    return Machine(
        name="Cori",
        model="Cray XC40",
        compute_nodes=2388 + 9688,
        cores_per_node=32,  # Haswell nodes; KNL differ but the study is I/O-side
        gpus_per_node=0,
        peak_flops=30e15,
        layers={"insystem": cbb, "pfs": scratch},
        interconnect="Cray Aries dragonfly",
    )

"""Summit and its two-layer I/O subsystem (§2.1.1).

Facts encoded here come straight from the paper:

* 4,608 AC922 nodes, 2 POWER9 CPUs + 6 V100 GPUs each, 148.8 PFLOPS.
* **SCNL** in-system layer: node-local NVMe, 7.4 PB raw, 26.7 TB/s peak
  read, 9.7 TB/s peak write, exposed per-job by Spectral/UnifyFS-style
  software.
* **Alpine** PFS: IBM Spectrum Scale (GPFS), ~250 PB usable, 2.5 TB/s
  peak, 154 NSD servers, 16 MB GPFS blocks distributed round-robin from a
  random starting NSD.
"""

from __future__ import annotations

from repro.platforms.machine import Machine
from repro.platforms.storage import LayerKind, Locality, StorageLayer
from repro.units import MiB, PB, TB

#: GPFS block size on Alpine (§2.1.1). The deployment uses a 16 MiB block.
ALPINE_BLOCK_SIZE = 16 * MiB

#: Number of NSD servers backing Alpine.
ALPINE_NSD_SERVERS = 154

#: Mount points used in synthetic paths.
ALPINE_MOUNT = "/gpfs/alpine"
SCNL_MOUNT = "/mnt/bb"


def summit() -> Machine:
    """Build the Summit platform description."""
    scnl = StorageLayer(
        key="insystem",
        name="SCNL",
        kind=LayerKind.IN_SYSTEM,
        locality=Locality.NODE_LOCAL,
        technology="NVMe",
        capacity_bytes=int(7.4 * PB),
        peak_read_bw=26.7 * TB,
        peak_write_bw=9.7 * TB,
        mount_point=SCNL_MOUNT,
        server_count=4608,  # one NVMe per compute node
        base_latency=10e-6,  # NVMe access latency floor
        params={
            "stdio_buffer": 64 * 1024,  # XFS-on-NVMe st_blksize hint
            "per_node_read_bw": 26.7 * TB / 4608,
            "per_node_write_bw": 9.7 * TB / 4608,
            "namespace": "job-exclusive (Spectral / UnifyFS)",
        },
    )
    alpine = StorageLayer(
        key="pfs",
        name="Alpine",
        kind=LayerKind.PFS,
        locality=Locality.CENTER_WIDE,
        technology="GPFS",
        capacity_bytes=250 * PB,
        peak_read_bw=2.5 * TB,
        peak_write_bw=2.5 * TB,
        mount_point=ALPINE_MOUNT,
        server_count=ALPINE_NSD_SERVERS,
        base_latency=300e-6,  # client->NSD round trip + GPFS token overhead
        params={
            "block_size": ALPINE_BLOCK_SIZE,
            # glibc sizes FILE* buffers from st_blksize; GPFS reports its
            # block size, so streams coalesce into multi-MiB system calls.
            "stdio_buffer": 4 * MiB,
            "placement": "round-robin from random NSD",
        },
    )
    return Machine(
        name="Summit",
        model="IBM AC922",
        compute_nodes=4608,
        cores_per_node=42,  # 2 x POWER9, 21 usable cores each
        gpus_per_node=6,
        peak_flops=148.8e15,
        layers={"insystem": scnl, "pfs": alpine},
        interconnect="Mellanox InfiniBand EDR fat-tree",
    )

"""I/O middleware interfaces (§2.2, §3.3).

The study analyzes three interfaces in the HPC I/O middleware stack:
POSIX, MPI-IO, and STDIO. MPI-IO sits *above* POSIX: when an application
uses MPI-IO against a POSIX-compliant file system, Darshan records both an
MPI-IO record and the POSIX record underneath, and the paper's data-volume
accounting (§3.1) uses the POSIX numbers to avoid double counting. STDIO
(the libc ``FILE*`` buffered stream API) bypasses MPI-IO entirely.
"""

from __future__ import annotations

import enum

from repro.darshan.constants import ModuleId


class IOInterface(enum.IntEnum):
    """The three instrumented data-path interfaces."""

    POSIX = 1
    MPIIO = 2
    STDIO = 3

    @property
    def module(self) -> ModuleId:
        """The Darshan module that instruments this interface."""
        return ModuleId(int(self))

    @property
    def label(self) -> str:
        """Human-readable label as used in the paper's tables."""
        return {"POSIX": "POSIX", "MPIIO": "MPI-IO", "STDIO": "STDIO"}[self.name]

    @property
    def records_request_sizes(self) -> bool:
        """Whether Darshan keeps per-request size histograms (not for STDIO)."""
        return self is not IOInterface.STDIO

    @property
    def issues_posix_underneath(self) -> bool:
        """MPI-IO is layered over POSIX on POSIX-compliant file systems."""
        return self is IOInterface.MPIIO

    @classmethod
    def from_name(cls, name: str) -> "IOInterface":
        key = name.upper().replace("-", "").replace("_", "")
        try:
            return cls[key]
        except KeyError:
            raise ValueError(f"unknown I/O interface {name!r}") from None


#: Interfaces whose byte counts enter the §3.1 data-volume accounting.
#: (MPI-IO traffic is counted through its POSIX records.)
ACCOUNTING_INTERFACES = (IOInterface.POSIX, IOInterface.STDIO)

"""Platform descriptions: machines, storage layers, and I/O interfaces.

The two platforms in the study (§2.1):

* :func:`repro.platforms.summit.summit` — Summit at OLCF with the
  node-local NVMe in-system layer (SCNL) and the center-wide GPFS file
  system (Alpine).
* :func:`repro.platforms.cori.cori` — Cori at NERSC with the DataWarp
  burst buffer (CBB) and the Lustre scratch file system (Cori Scratch).
"""

from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine, MountTable
from repro.platforms.storage import LayerKind, StorageLayer
from repro.platforms.summit import summit
from repro.platforms.cori import cori

PLATFORM_BUILDERS = {"summit": summit, "cori": cori}


def get_platform(name: str) -> Machine:
    """Build a platform by name (``"summit"`` or ``"cori"``)."""
    try:
        return PLATFORM_BUILDERS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; known: {sorted(PLATFORM_BUILDERS)}"
        ) from None


__all__ = [
    "IOInterface",
    "Machine",
    "MountTable",
    "LayerKind",
    "StorageLayer",
    "summit",
    "cori",
    "get_platform",
    "PLATFORM_BUILDERS",
]

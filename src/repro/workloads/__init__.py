"""Synthetic workload generation.

The paper's inputs are proprietary year-long log archives; this subpackage
synthesizes a population with the same *joint structure* — jobs from
science domains running application archetypes that touch (layer,
interface, op-class) file groups with calibrated size and request-size
distributions (see DESIGN.md §1 for the substitution argument).

* :mod:`distributions` — deterministic, vectorized samplers (truncated
  lognormal, Pareto tails, mixtures, discrete).
* :mod:`domains` — OLCF/NERSC science-domain catalogs (Figures 7/10).
* :mod:`archetypes` — application templates (checkpointing simulation,
  AI/ML training, genomics text pipelines, visualization, ...).
* :mod:`mixes` — per-platform archetype weights and file-group
  parameters: **the calibration layer** tying the generator to the
  paper's published marginals.
* :mod:`generator` — the vectorized year-long population generator
  producing a :class:`~repro.store.recordstore.RecordStore`.
"""

from repro.workloads.distributions import (
    BinProfile,
    Constant,
    DiscreteLogUniform,
    Distribution,
    LogNormal,
    Mixture,
    ParetoTail,
)
from repro.workloads.domains import CORI_DOMAINS, SUMMIT_DOMAINS
from repro.workloads.archetypes import ArchetypeSpec, FileGroupSpec
from repro.workloads.mixes import cori_mix, summit_mix
from repro.workloads.generator import GeneratorConfig, WorkloadGenerator

__all__ = [
    "BinProfile",
    "Constant",
    "DiscreteLogUniform",
    "Distribution",
    "LogNormal",
    "Mixture",
    "ParetoTail",
    "SUMMIT_DOMAINS",
    "CORI_DOMAINS",
    "ArchetypeSpec",
    "FileGroupSpec",
    "summit_mix",
    "cori_mix",
    "GeneratorConfig",
    "WorkloadGenerator",
]

"""Application archetype and file-group specifications.

An :class:`ArchetypeSpec` is a template for a family of applications
(checkpointing simulation, ML training, text-based genomics pipeline, …).
It owns job-shape distributions and a list of :class:`FileGroupSpec` —
each describing one population of files the application touches on one
(layer, interface) with one access character. The per-platform weights
and concrete parameter values live in :mod:`repro.workloads.mixes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.platforms.interfaces import IOInterface
from repro.workloads.distributions import BinProfile, Distribution


@dataclass(frozen=True)
class FileGroupSpec:
    """One population of files an application run touches.

    ``opclass_probs`` is (read-only, read-write, write-only). Read sizes
    apply to RO and RW files; write sizes to WO and RW files. ``shared_prob``
    is the probability that a file is a single shared file accessed by all
    ranks (Darshan rank −1) rather than a file-per-process record — only
    shared files enter the §3.4 performance analysis.
    """

    name: str
    layer: str  # "pfs" | "insystem"
    interface: IOInterface
    #: Expected number of such files per application run (Poisson mean).
    files_per_run: float
    opclass_probs: tuple[float, float, float]
    read_size: Distribution
    write_size: Distribution
    read_profile: BinProfile
    write_profile: BinProfile
    shared_prob: float = 0.0
    #: MPI-IO collective path (ignored for other interfaces).
    collective: bool = False
    #: File-extension mix, e.g. {"h5": 0.8, "chk": 0.2}; "" = no extension.
    ext_probs: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.layer not in ("pfs", "insystem"):
            raise ConfigurationError(f"{self.name}: unknown layer {self.layer!r}")
        if self.files_per_run <= 0:
            raise ConfigurationError(f"{self.name}: files_per_run must be positive")
        p = self.opclass_probs
        if len(p) != 3 or any(x < 0 for x in p) or abs(sum(p) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{self.name}: opclass_probs must be 3 non-negatives summing to 1"
            )
        if not 0 <= self.shared_prob <= 1:
            raise ConfigurationError(f"{self.name}: shared_prob out of [0,1]")
        if self.ext_probs:
            total = sum(self.ext_probs.values())
            if total <= 0 or any(v < 0 for v in self.ext_probs.values()):
                raise ConfigurationError(f"{self.name}: bad ext_probs")


@dataclass(frozen=True)
class ArchetypeSpec:
    """A family of applications with a common I/O character."""

    name: str
    #: Domain → weight; sampled per job.
    domains: dict[str, float]
    #: Nodes per job.
    nnodes: Distribution
    #: MPI processes per node (fixed per archetype for simplicity).
    procs_per_node: int
    #: Job runtime, seconds.
    runtime: Distribution
    #: Application instances per job (Darshan logs per job).
    instances: Distribution
    groups: tuple[FileGroupSpec, ...]
    #: Expected DataWarp capacity request, bytes (None = no BB directive;
    #: only meaningful on platforms with scheduler-integrated staging).
    bb_capacity: Distribution | None = None

    def __post_init__(self) -> None:
        if not self.domains:
            raise ConfigurationError(f"{self.name}: needs at least one domain")
        if any(w <= 0 for w in self.domains.values()):
            raise ConfigurationError(f"{self.name}: domain weights must be positive")
        if self.procs_per_node <= 0:
            raise ConfigurationError(f"{self.name}: procs_per_node must be positive")
        if not self.groups:
            raise ConfigurationError(f"{self.name}: needs at least one file group")

    def expected_files_per_run(self) -> float:
        """Calibration helper: mean files per application instance."""
        return sum(g.files_per_run for g in self.groups)

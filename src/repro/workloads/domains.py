"""Science-domain catalogs.

The OLCF workload manager records a job's domain directly; on Cori the
paper merged project→domain mappings from the NERSC NEWT API (§3.3.2),
leaving ~10% of jobs without a domain. The catalogs below are the domains
appearing in Figures 7 and 10.
"""

from __future__ import annotations

#: Domains on Summit (Figures 7a / 10a; OLCF categories).
SUMMIT_DOMAINS: tuple[str, ...] = (
    "biology",
    "chemistry",
    "computer science",
    "earth science",
    "engineering",
    "lattice theory",
    "machine learning",
    "materials",
    "medical science",
    "nuclear",
    "physics",
    "staff",
)

#: Domains on Cori (Figures 7b / 10b; NERSC/NEWT categories).
CORI_DOMAINS: tuple[str, ...] = (
    "biology",
    "chemistry",
    "computer science",
    "earth science",
    "energy sciences",
    "engineering",
    "fusion",
    "machine learning",
    "materials",
    "mathematics",
    "nuclear energy",
    "physics",
)

#: Fraction of Cori jobs whose project had no NEWT domain record (the
#: paper reports 90.02% coverage for STDIO jobs).
CORI_UNKNOWN_DOMAIN_FRACTION = 0.10


def domain_catalog(platform: str) -> tuple[str, ...]:
    """The domain catalog for a platform name."""
    key = platform.lower()
    if key == "summit":
        return SUMMIT_DOMAINS
    if key == "cori":
        return CORI_DOMAINS
    raise ValueError(f"unknown platform {platform!r}")

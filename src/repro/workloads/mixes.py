"""Per-platform workload mixes — the calibration layer.

Every number here is derived from a published statistic of the paper (the
derivations are spelled out in DESIGN.md §4 and EXPERIMENTS.md). Structure:

* A platform mix is a list of ``(weight, ArchetypeSpec)`` — ``weight`` is
  the fraction of the platform's jobs running that archetype.
* Key Summit facts driving the shape: only ~3.4K of 281.6K jobs touch
  SCNL at all (Table 5), yet SCNL holds 279M of 1294M files (Table 3) —
  so SCNL archetypes are *rare but extremely log- and file-heavy*
  (genomics/ML pipelines spawning hundreds of instances per job). SCNL is
  STDIO-dominated (227M STDIO vs 52M POSIX files, Table 6) and
  read-leaning (4.43 PB R vs 2.69 PB W); the PFS is write-dominated
  (~42x) through checkpoint archetypes with a heavy upper tail below
  ~1 TB (only 78 >1 TB write files, Table 4).
* Key Cori facts: 14.4% of jobs are CBB-exclusive (DataWarp staging hides
  their PFS traffic, Table 5); both layers are read-dominated (3.16x CBB,
  6.58x PFS); MPI-IO is strong (207M of 403M PFS files; nearly all CBB
  POSIX traffic is MPI-IO underneath, Table 6); STDIO is ~14% of files;
  >1 TB writes land on the PFS (10,045) while >1 TB reads come from CBB
  (513 vs 74, Table 4).
"""

from __future__ import annotations

from repro.platforms.interfaces import IOInterface
from repro.units import GB, KB, MB, TB
from repro.workloads.archetypes import ArchetypeSpec, FileGroupSpec
from repro.workloads.distributions import (
    BinProfile,
    Constant,
    DiscreteLogUniform,
    Distribution,
    LogNormal,
    Mixture,
    ParetoTail,
)

# ---------------------------------------------------------------------------
# Access-size profiles (Figures 4 and 5).
# ---------------------------------------------------------------------------

#: Summit PFS reads: "both 0-100 and 1K-10K request-size ranges represent
#: about 45% of read calls" (§3.2.1).
PFS_TINY_READS = BinProfile.from_dict(
    {"0_100": 0.45, "100_1K": 0.05, "1K_10K": 0.43, "10K_100K": 0.05, "100K_1M": 0.02}
)

#: Summit SCNL: "the 10K-100K request-size range represents ... 83% of
#: read and 60% of write calls".
SCNL_READS = BinProfile.from_dict(
    {"1K_10K": 0.08, "10K_100K": 0.83, "100K_1M": 0.06, "1M_4M": 0.03}
)
SCNL_WRITES = BinProfile.from_dict(
    {"100_1K": 0.08, "1K_10K": 0.20, "10K_100K": 0.60, "100K_1M": 0.09, "1M_4M": 0.03}
)

#: Generic small-write profile for the PFS (checkpoint metadata, logs).
PFS_SMALL_WRITES = BinProfile.from_dict(
    {"0_100": 0.25, "100_1K": 0.25, "1K_10K": 0.30, "10K_100K": 0.15, "100K_1M": 0.05}
)

#: Collective MPI-IO traffic: aggregated, mostly 1-10 MB requests.
COLLECTIVE_IO = BinProfile.from_dict(
    {"100K_1M": 0.15, "1M_4M": 0.45, "4M_10M": 0.30, "10M_100M": 0.10}
)

#: Bulk POSIX streaming (dataset shards, staging copies).
BULK_STREAMING = BinProfile.from_dict(
    {"10K_100K": 0.15, "100K_1M": 0.30, "1M_4M": 0.35, "4M_10M": 0.15, "10M_100M": 0.05}
)

#: Large-job burst-buffer traffic: bigger requests than PFS traffic
#: (Figure 5: "more large requests to the in-system storage layer").
BB_LARGE_REQS = BinProfile.from_dict(
    {"100K_1M": 0.20, "1M_4M": 0.40, "4M_10M": 0.25, "10M_100M": 0.15}
)

# ---------------------------------------------------------------------------
# Transfer-size building blocks (Figure 3 CDFs + Table 3 volumes + Table 4
# large-file counts). Mixture = (bulk below 1 GB) + (rare heavy tail).
# ---------------------------------------------------------------------------


def small_files(median: float, sigma: float = 2.2, hi: float = 1 * GB) -> LogNormal:
    """The sub-GB mass that dominates every CDF in Figure 3."""
    return LogNormal(median, sigma, lo=1.0, hi=hi)


def tailed(
    bulk: Distribution,
    tail: Distribution,
    tail_weight: float,
) -> Mixture:
    return Mixture(((1.0 - tail_weight, bulk), (tail_weight, tail)))


# Summit PFS writes: 99% < 1 GB, yet ~42x the read volume — a ~1% tail of
# multi-hundred-GB checkpoints capped below 1 TB (only 78 files exceed it).
SUMMIT_PFS_WRITE_SIZE = tailed(
    small_files(48 * KB),
    LogNormal(650 * GB, 0.55, lo=1 * GB, hi=0.98 * TB),
    0.055,
)

# Summit PFS reads: 97% < 1 GB with a thinner tail that *does* cross 1 TB
# (7,232 read files > 1 TB — restart/analysis over full checkpoints).
SUMMIT_PFS_READ_SIZE = tailed(
    small_files(96 * KB),
    LogNormal(4 * GB, 1.6, lo=1 * GB, hi=3 * TB),
    0.02,
)

# Summit SCNL: 99% of reads and writes < 1 GB, nothing above 1 TB.
SUMMIT_SCNL_READ_SIZE = tailed(
    small_files(192 * KB), LogNormal(4 * GB, 0.9, lo=1 * GB, hi=400 * GB), 0.005
)
SUMMIT_SCNL_WRITE_SIZE = Mixture((
    (0.980, small_files(96 * KB)),
    # Sub-GB scratch dumps: populate the 100MB-1GB bin of Figure 11b
    # (where the paper observed STDIO beating POSIX by ~1.5x).
    (0.010, LogNormal(400 * MB, 0.5, lo=100 * MB, hi=1 * GB)),
    (0.010, LogNormal(2 * GB, 0.8, lo=1 * GB, hi=100 * GB)),
))

# STDIO-managed files are smaller still (Figure 9), with SCNL writes
# showing a fatter mid-tail (only 82.4% < 1 GB, §3.3.1).
SUMMIT_STDIO_SIZE = tailed(
    small_files(24 * KB, sigma=2.4, hi=8 * GB),
    ParetoTail(0.8, 100 * MB, 20 * GB),
    0.004,
)
SUMMIT_SCNL_STDIO_WRITE_SIZE = Mixture((
    (0.984, small_files(48 * KB, sigma=2.4)),
    (0.010, LogNormal(400 * MB, 0.5, lo=100 * MB, hi=1 * GB)),
    (0.006, LogNormal(1.5 * GB, 0.5, lo=1 * GB, hi=20 * GB)),
))
# ...and the five >1 TB STDIO write files of Figure 11b's 1TB+ bin.
SUMMIT_PFS_STDIO_WRITE_SIZE = tailed(
    small_files(32 * KB, sigma=2.4),
    ParetoTail(0.9, 100 * MB, 1.6 * TB),
    0.002,
)

# Cori PFS: read-dominated 6.58x; 99.05% of reads < 1 GB but with a heavy
# read tail (climate/ML input scans); writes have the >1 TB population
# (10,045 files, Table 4).
CORI_PFS_READ_SIZE = tailed(
    small_files(128 * KB),
    LogNormal(24 * GB, 1.3, lo=1 * GB, hi=0.97 * TB),
    0.022,
)
CORI_PFS_WRITE_SIZE = tailed(
    small_files(64 * KB),
    LogNormal(30 * GB, 1.6, lo=1 * GB, hi=6 * TB),
    0.003,
)

# Cori CBB: read-dominated 3.16x with *large* staged reads — 87% of all
# >1 TB reads happen here (513 files).
CORI_CBB_READ_SIZE = tailed(
    small_files(640 * KB),
    LogNormal(40 * GB, 1.2, lo=1 * GB, hi=4 * TB),
    0.020,
)
CORI_CBB_WRITE_SIZE = tailed(
    small_files(256 * KB),
    LogNormal(20 * GB, 1.3, lo=1 * GB, hi=2.5 * TB),
    0.012,
)

CORI_STDIO_SIZE = tailed(
    small_files(24 * KB, sigma=2.4, hi=4 * GB),
    ParetoTail(0.8, 100 * MB, 20 * GB),
    0.008,
)

#: Human-readable logs / visualization data: the paper found ~70% of
#: Cori's STDIO files carry .rst/.dat/.vol extensions (§3.3.2).
STDIO_EXTS = {"rst": 0.30, "dat": 0.25, "vol": 0.15, "log": 0.12, "txt": 0.10, "out": 0.08}
CKPT_EXTS = {"h5": 0.45, "chk": 0.25, "nc": 0.15, "bp": 0.15}
DATA_EXTS = {"h5": 0.30, "nc": 0.20, "bin": 0.20, "dat": 0.15, "csv": 0.15}
SEQ_EXTS = {"fastq": 0.35, "sam": 0.20, "txt": 0.20, "fa": 0.15, "vcf": 0.10}


# ---------------------------------------------------------------------------
# Summit archetypes.
# ---------------------------------------------------------------------------


def _summit_sim_checkpoint() -> ArchetypeSpec:
    """Bulk-synchronous simulation: the PFS write-volume carrier."""
    return ArchetypeSpec(
        name="sim_checkpoint",
        domains={
            "physics": 0.32, "chemistry": 0.14, "materials": 0.14,
            "lattice theory": 0.10, "nuclear": 0.08, "earth science": 0.08,
            "engineering": 0.09, "medical science": 0.05,
        },
        nnodes=DiscreteLogUniform(2, 512),
        procs_per_node=6,
        runtime=LogNormal(4800, 0.9, lo=300, hi=86400),
        instances=DiscreteLogUniform(1, 100),
        groups=(
            FileGroupSpec(
                name="checkpoints",
                layer="pfs", interface=IOInterface.MPIIO,
                files_per_run=75.0,
                opclass_probs=(0.04, 0.06, 0.90),
                read_size=SUMMIT_PFS_READ_SIZE,
                write_size=SUMMIT_PFS_WRITE_SIZE,
                read_profile=COLLECTIVE_IO, write_profile=COLLECTIVE_IO,
                shared_prob=0.75, collective=True, ext_probs=CKPT_EXTS,
            ),
            FileGroupSpec(
                name="restart_inputs",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=22.0,
                opclass_probs=(0.92, 0.04, 0.04),
                read_size=SUMMIT_PFS_READ_SIZE,
                write_size=small_files(32 * KB),
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.05, ext_probs=DATA_EXTS,
            ),
            FileGroupSpec(
                # Full checkpoint restores: few files, streamed by all
                # ranks of a shared open — the shared-POSIX population of
                # the Figure 11 read panels.
                name="restart_bulk",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=5.0,
                opclass_probs=(0.95, 0.03, 0.02),
                read_size=SUMMIT_PFS_READ_SIZE,
                write_size=small_files(32 * KB),
                read_profile=BULK_STREAMING, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.60, ext_probs=CKPT_EXTS,
            ),
            FileGroupSpec(
                name="diagnostics",
                layer="pfs", interface=IOInterface.STDIO,
                files_per_run=50.0,
                opclass_probs=(0.10, 0.15, 0.75),
                read_size=SUMMIT_STDIO_SIZE,
                write_size=SUMMIT_PFS_STDIO_WRITE_SIZE,
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.12, ext_probs=STDIO_EXTS,
            ),
        ),
    )


def _summit_posix_analysis() -> ArchetypeSpec:
    """Post-processing / analysis: POSIX read-heavy on the PFS."""
    return ArchetypeSpec(
        name="posix_analysis",
        domains={
            "physics": 0.20, "earth science": 0.14, "biology": 0.12,
            "chemistry": 0.12, "materials": 0.12, "engineering": 0.10,
            "computer science": 0.08, "staff": 0.06, "nuclear": 0.06,
        },
        nnodes=DiscreteLogUniform(1, 16),
        procs_per_node=6,
        runtime=LogNormal(1200, 1.0, lo=60, hi=43200),
        instances=DiscreteLogUniform(1, 60),
        groups=(
            FileGroupSpec(
                name="analysis_inputs",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=170.0,
                opclass_probs=(0.88, 0.05, 0.07),
                read_size=SUMMIT_PFS_READ_SIZE,
                write_size=small_files(64 * KB),
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.0, ext_probs=DATA_EXTS,
            ),
            FileGroupSpec(
                name="viz_products",
                layer="pfs", interface=IOInterface.STDIO,
                files_per_run=120.0,
                opclass_probs=(0.15, 0.10, 0.75),
                read_size=SUMMIT_STDIO_SIZE, write_size=SUMMIT_STDIO_SIZE,
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.05, ext_probs=STDIO_EXTS,
            ),
        ),
    )


def _summit_mltraining() -> ArchetypeSpec:
    """AI/ML training: read-intensive, smaller jobs, PFS datasets."""
    return ArchetypeSpec(
        name="ml_training",
        domains={
            "machine learning": 0.40, "computer science": 0.22,
            "biology": 0.14, "medical science": 0.12, "staff": 0.12,
        },
        nnodes=DiscreteLogUniform(1, 48),
        procs_per_node=6,
        runtime=LogNormal(7200, 0.8, lo=600, hi=86400),
        instances=DiscreteLogUniform(1, 50),
        groups=(
            FileGroupSpec(
                name="training_shards",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=240.0,
                opclass_probs=(0.96, 0.02, 0.02),
                read_size=SUMMIT_PFS_READ_SIZE,
                write_size=small_files(16 * KB),
                read_profile=BULK_STREAMING, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.02, ext_probs=DATA_EXTS,
            ),
            FileGroupSpec(
                name="train_logs",
                layer="pfs", interface=IOInterface.STDIO,
                files_per_run=60.0,
                opclass_probs=(0.08, 0.30, 0.62),
                read_size=SUMMIT_STDIO_SIZE, write_size=SUMMIT_STDIO_SIZE,
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                ext_probs=STDIO_EXTS,
            ),
        ),
    )


def _summit_scnl_pipeline() -> ArchetypeSpec:
    """The rare, huge SCNL users: high-throughput text/ML pipelines.

    ~1.2% of Summit jobs (Table 5's 3.42K) spawning hundreds of app
    instances, each touching hundreds of node-local files — this single
    archetype family carries SCNL's 279M files and its STDIO dominance.
    Domain mix follows Figure 7a: computer science + physics cover 60% of
    SCNL jobs.
    """
    return ArchetypeSpec(
        name="scnl_pipeline",
        domains={
            "computer science": 0.34, "physics": 0.26, "biology": 0.10,
            "engineering": 0.07, "earth science": 0.06, "staff": 0.06,
            "machine learning": 0.06, "medical science": 0.05,
        },
        nnodes=DiscreteLogUniform(16, 1024),
        procs_per_node=6,
        runtime=LogNormal(3600, 0.8, lo=600, hi=86400),
        instances=DiscreteLogUniform(600, 2200),
        groups=(
            FileGroupSpec(
                name="scnl_text",
                layer="insystem", interface=IOInterface.STDIO,
                files_per_run=105.0,
                opclass_probs=(0.55, 0.12, 0.33),
                read_size=SUMMIT_SCNL_READ_SIZE,
                write_size=SUMMIT_SCNL_STDIO_WRITE_SIZE,
                read_profile=SCNL_READS, write_profile=SCNL_WRITES,
                shared_prob=0.08, ext_probs=SEQ_EXTS,
            ),
            FileGroupSpec(
                name="scnl_binary",
                layer="insystem", interface=IOInterface.POSIX,
                files_per_run=24.0,
                opclass_probs=(0.60, 0.10, 0.30),
                read_size=SUMMIT_SCNL_READ_SIZE,
                write_size=SUMMIT_SCNL_WRITE_SIZE,
                read_profile=SCNL_READS, write_profile=SCNL_WRITES,
                shared_prob=0.06, ext_probs=DATA_EXTS,
            ),
            FileGroupSpec(
                name="pipeline_pfs_io",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=11.0,
                opclass_probs=(0.70, 0.05, 0.25),
                read_size=SUMMIT_PFS_READ_SIZE,
                write_size=small_files(128 * KB),
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.05, ext_probs=DATA_EXTS,
            ),
            FileGroupSpec(
                name="pipeline_pfs_text",
                layer="pfs", interface=IOInterface.STDIO,
                files_per_run=14.0,
                opclass_probs=(0.30, 0.15, 0.55),
                read_size=SUMMIT_STDIO_SIZE, write_size=SUMMIT_STDIO_SIZE,
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                ext_probs=STDIO_EXTS,
            ),
        ),
    )


def _summit_scnl_domain_specialists() -> tuple[ArchetypeSpec, ...]:
    """Small SCNL populations with the Figure 7a quirks: biology and
    materials read-only; chemistry write-only."""
    read_only = FileGroupSpec(
        name="scnl_staged_inputs",
        layer="insystem", interface=IOInterface.STDIO,
        files_per_run=60.0,
        opclass_probs=(1.0, 0.0, 0.0),
        read_size=SUMMIT_SCNL_READ_SIZE, write_size=Constant(1.0),
        read_profile=SCNL_READS, write_profile=SCNL_WRITES,
        ext_probs=SEQ_EXTS,
    )
    write_only = FileGroupSpec(
        name="scnl_scratch_out",
        layer="insystem", interface=IOInterface.POSIX,
        files_per_run=45.0,
        opclass_probs=(0.0, 0.0, 1.0),
        read_size=Constant(1.0), write_size=SUMMIT_SCNL_WRITE_SIZE,
        read_profile=SCNL_READS, write_profile=SCNL_WRITES,
        ext_probs=DATA_EXTS,
    )
    pfs_side = FileGroupSpec(
        name="pfs_side_io",
        layer="pfs", interface=IOInterface.POSIX,
        files_per_run=25.0,
        opclass_probs=(0.60, 0.10, 0.30),
        read_size=SUMMIT_PFS_READ_SIZE, write_size=small_files(128 * KB),
        read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
        ext_probs=DATA_EXTS,
    )
    bio = ArchetypeSpec(
        name="scnl_bio_readonly",
        domains={"biology": 0.55, "materials": 0.45},
        nnodes=DiscreteLogUniform(4, 128),
        procs_per_node=6,
        runtime=LogNormal(2400, 0.8, lo=300, hi=43200),
        instances=DiscreteLogUniform(200, 900),
        groups=(read_only, pfs_side),
    )
    chem = ArchetypeSpec(
        name="scnl_chem_writeonly",
        domains={"chemistry": 1.0},
        nnodes=DiscreteLogUniform(4, 128),
        procs_per_node=6,
        runtime=LogNormal(2400, 0.8, lo=300, hi=43200),
        instances=DiscreteLogUniform(200, 900),
        groups=(write_only, pfs_side),
    )
    return bio, chem


def summit_mix() -> list[tuple[float, ArchetypeSpec]]:
    """Archetype weights for Summit (fractions of the 281.6K jobs)."""
    bio, chem = _summit_scnl_domain_specialists()
    return [
        (0.335, _summit_sim_checkpoint()),
        (0.405, _summit_posix_analysis()),
        (0.248, _summit_mltraining()),
        # SCNL users: 3.42K of 281.6K jobs = 1.21% total (Table 5).
        (0.0095, _summit_scnl_pipeline()),
        (0.0015, bio),
        (0.0010, chem),
    ]


# ---------------------------------------------------------------------------
# Cori archetypes.
# ---------------------------------------------------------------------------


def _cori_mpiio_sim() -> ArchetypeSpec:
    """MPI-IO simulation I/O on Lustre — Cori's strong MPI-IO share."""
    return ArchetypeSpec(
        name="mpiio_sim",
        domains={
            "physics": 0.22, "fusion": 0.14, "materials": 0.14,
            "chemistry": 0.13, "earth science": 0.12, "energy sciences": 0.09,
            "nuclear energy": 0.06, "engineering": 0.06, "mathematics": 0.04,
        },
        nnodes=DiscreteLogUniform(1, 256),
        procs_per_node=32,
        runtime=LogNormal(9000, 0.9, lo=120, hi=86400),
        instances=DiscreteLogUniform(1, 20),
        groups=(
            FileGroupSpec(
                name="hdf5_outputs",
                layer="pfs", interface=IOInterface.MPIIO,
                files_per_run=130.0,
                opclass_probs=(0.22, 0.08, 0.70),
                read_size=CORI_PFS_READ_SIZE, write_size=CORI_PFS_WRITE_SIZE,
                read_profile=COLLECTIVE_IO, write_profile=COLLECTIVE_IO,
                shared_prob=0.70, collective=True, ext_probs=CKPT_EXTS,
            ),
            FileGroupSpec(
                name="posix_side",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=16.0,
                opclass_probs=(0.75, 0.08, 0.17),
                read_size=CORI_PFS_READ_SIZE, write_size=small_files(64 * KB),
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.15, ext_probs=DATA_EXTS,
            ),
            FileGroupSpec(
                name="job_logs",
                layer="pfs", interface=IOInterface.STDIO,
                files_per_run=9.0,
                opclass_probs=(0.12, 0.18, 0.70),
                read_size=CORI_STDIO_SIZE, write_size=CORI_STDIO_SIZE,
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.06, ext_probs=STDIO_EXTS,
            ),
        ),
    )


def _cori_read_analytics() -> ArchetypeSpec:
    """Read-heavy analytics/ML over Lustre — the PFS read dominance."""
    return ArchetypeSpec(
        name="read_analytics",
        domains={
            "earth science": 0.18, "physics": 0.16, "machine learning": 0.14,
            "biology": 0.12, "computer science": 0.12, "materials": 0.10,
            "energy sciences": 0.08, "chemistry": 0.06, "engineering": 0.04,
        },
        nnodes=DiscreteLogUniform(1, 24),
        procs_per_node=32,
        runtime=LogNormal(1800, 1.0, lo=60, hi=43200),
        instances=DiscreteLogUniform(1, 12),
        groups=(
            FileGroupSpec(
                name="scan_inputs",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=60.0,
                opclass_probs=(0.90, 0.04, 0.06),
                read_size=CORI_PFS_READ_SIZE, write_size=small_files(64 * KB),
                read_profile=BULK_STREAMING, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.08, ext_probs=DATA_EXTS,
            ),
            FileGroupSpec(
                name="report_text",
                layer="pfs", interface=IOInterface.STDIO,
                files_per_run=13.0,
                opclass_probs=(0.25, 0.15, 0.60),
                read_size=CORI_STDIO_SIZE, write_size=CORI_STDIO_SIZE,
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.05, ext_probs=STDIO_EXTS,
            ),
        ),
    )


def _cori_bb_exclusive() -> ArchetypeSpec:
    """CBB-exclusive jobs (14.4% of Cori jobs, Table 5): DataWarp staging
    moves PFS data outside the Darshan window, so the log shows only BB
    traffic. Nearly all CBB POSIX traffic is MPI-IO underneath (Table 6).
    """
    return ArchetypeSpec(
        name="bb_exclusive",
        domains={
            "physics": 0.45, "computer science": 0.10, "earth science": 0.09,
            "materials": 0.08, "fusion": 0.07, "chemistry": 0.06,
            "biology": 0.05, "machine learning": 0.04, "energy sciences": 0.03,
            "nuclear energy": 0.01, "engineering": 0.01, "mathematics": 0.01,
        },
        nnodes=DiscreteLogUniform(1, 96),
        procs_per_node=32,
        runtime=LogNormal(2400, 0.9, lo=120, hi=86400),
        instances=DiscreteLogUniform(1, 8),
        bb_capacity=LogNormal(400 * GB, 1.0, lo=20 * GB, hi=50 * TB),
        groups=(
            FileGroupSpec(
                name="bb_mpiio",
                layer="insystem", interface=IOInterface.MPIIO,
                files_per_run=30.0,
                opclass_probs=(0.58, 0.20, 0.22),
                read_size=CORI_CBB_READ_SIZE, write_size=CORI_CBB_WRITE_SIZE,
                read_profile=BB_LARGE_REQS, write_profile=BB_LARGE_REQS,
                shared_prob=0.55, collective=True, ext_probs=CKPT_EXTS,
            ),
            FileGroupSpec(
                name="bb_stdio",
                layer="insystem", interface=IOInterface.STDIO,
                files_per_run=1.5,
                opclass_probs=(0.30, 0.40, 0.30),
                read_size=CORI_STDIO_SIZE, write_size=CORI_STDIO_SIZE,
                read_profile=BB_LARGE_REQS, write_profile=BB_LARGE_REQS,
                ext_probs=STDIO_EXTS,
            ),
        ),
    )


def _cori_bb_hybrid() -> ArchetypeSpec:
    """Jobs using both layers (35.9K, Table 5): checkpoint to CBB with
    explicit PFS interaction inside the window."""
    return ArchetypeSpec(
        name="bb_hybrid",
        domains={
            "physics": 0.35, "earth science": 0.15, "materials": 0.12,
            "fusion": 0.10, "chemistry": 0.08, "computer science": 0.08,
            "machine learning": 0.06, "energy sciences": 0.06,
        },
        nnodes=DiscreteLogUniform(2, 192),
        procs_per_node=32,
        runtime=LogNormal(3600, 0.8, lo=300, hi=86400),
        instances=DiscreteLogUniform(1, 10),
        bb_capacity=LogNormal(1 * TB, 1.0, lo=20 * GB, hi=100 * TB),
        groups=(
            FileGroupSpec(
                name="bb_ckpt",
                layer="insystem", interface=IOInterface.MPIIO,
                files_per_run=14.0,
                opclass_probs=(0.50, 0.22, 0.28),
                read_size=CORI_CBB_READ_SIZE, write_size=CORI_CBB_WRITE_SIZE,
                read_profile=BB_LARGE_REQS, write_profile=BB_LARGE_REQS,
                shared_prob=0.60, collective=True, ext_probs=CKPT_EXTS,
            ),
            FileGroupSpec(
                name="pfs_inputs",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=30.0,
                opclass_probs=(0.80, 0.06, 0.14),
                read_size=CORI_PFS_READ_SIZE, write_size=small_files(128 * KB),
                read_profile=BULK_STREAMING, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.12, ext_probs=DATA_EXTS,
            ),
        ),
    )


def _cori_genomics_text() -> ArchetypeSpec:
    """Text-based pipelines: Cori's 14% STDIO share."""
    return ArchetypeSpec(
        name="genomics_text",
        domains={
            "biology": 0.45, "energy sciences": 0.15, "computer science": 0.12,
            "earth science": 0.10, "machine learning": 0.10, "chemistry": 0.08,
        },
        nnodes=DiscreteLogUniform(1, 8),
        procs_per_node=32,
        runtime=LogNormal(1200, 1.0, lo=60, hi=43200),
        instances=DiscreteLogUniform(1, 15),
        groups=(
            FileGroupSpec(
                name="text_corpus",
                layer="pfs", interface=IOInterface.STDIO,
                files_per_run=100.0,
                opclass_probs=(0.50, 0.12, 0.38),
                read_size=CORI_STDIO_SIZE, write_size=CORI_STDIO_SIZE,
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                shared_prob=0.08, ext_probs=SEQ_EXTS,
            ),
            FileGroupSpec(
                name="index_files",
                layer="pfs", interface=IOInterface.POSIX,
                files_per_run=28.0,
                opclass_probs=(0.80, 0.08, 0.12),
                read_size=CORI_PFS_READ_SIZE, write_size=small_files(64 * KB),
                read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
                ext_probs=DATA_EXTS,
            ),
        ),
    )


def cori_mix() -> list[tuple[float, ArchetypeSpec]]:
    """Archetype weights for Cori (fractions of the 749.5K jobs).

    Weights pin Table 5's exclusivity split: bb_exclusive 14.4%,
    bb_hybrid ~5%, everything else PFS-only.
    """
    return [
        (0.315, _cori_mpiio_sim()),
        (0.345, _cori_read_analytics()),
        (0.144, _cori_bb_exclusive()),
        (0.050, _cori_bb_hybrid()),
        (0.146, _cori_genomics_text()),
    ]

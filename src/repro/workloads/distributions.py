"""Vectorized, seedable samplers for workload generation.

All samplers draw from a caller-supplied :class:`numpy.random.Generator`
and return arrays; none touch global state. Sizes are float internally and
rounded to integer bytes at the edges.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.errors import ConfigurationError


class Distribution(abc.ABC):
    """A 1-D distribution over positive reals."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` samples."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic (or high-accuracy numeric) mean, used for calibration."""


@dataclass(frozen=True)
class Constant(Distribution):
    """A degenerate point mass."""

    value: float

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value, dtype=np.float64)

    def mean(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Truncated lognormal parameterized by its (untruncated) median.

    ``median`` is in natural units (bytes, seconds); ``sigma`` is the log
    standard deviation. Samples outside ``[lo, hi]`` are clipped —
    truncation by clipping keeps the sampler one vectorized pass and puts
    the tail mass at the boundary, which is what a capacity-limited file
    system does to file sizes anyway.
    """

    median: float
    sigma: float
    lo: float = 1.0
    hi: float = float("inf")

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ConfigurationError("median and sigma must be positive")
        if not 0 <= self.lo < self.hi:
            raise ConfigurationError("need 0 <= lo < hi")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        out = rng.lognormal(mean=np.log(self.median), sigma=self.sigma, size=n)
        return np.clip(out, self.lo, self.hi)

    def mean(self) -> float:
        # Untruncated mean is a good calibration proxy when clipping is mild.
        mu = np.log(self.median)
        raw = float(np.exp(mu + self.sigma**2 / 2))
        return min(max(raw, self.lo), self.hi if np.isfinite(self.hi) else raw)


@dataclass(frozen=True)
class ParetoTail(Distribution):
    """Bounded Pareto on ``[lo, hi]`` with shape ``alpha``.

    ``alpha`` < 1 concentrates mass near ``hi`` in expectation — used for
    the giant checkpoint files that carry most of Summit's PFS write
    volume despite 99% of files being < 1 GB (§3.2.1, Table 4).
    """

    alpha: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if not 0 < self.lo < self.hi:
            raise ConfigurationError("need 0 < lo < hi")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size=n)
        a = self.alpha
        l_a = self.lo**-a
        h_a = self.hi**-a
        return (l_a - u * (l_a - h_a)) ** (-1.0 / a)

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.lo, self.hi
        if np.isclose(a, 1.0):
            return lo * hi / (hi - lo) * np.log(hi / lo)
        num = a * (lo**(1 - a) - hi**(1 - a))
        den = (a - 1) * (lo**-a - hi**-a)
        return float(num / den)


@dataclass(frozen=True)
class DiscreteLogUniform(Distribution):
    """Integers log-uniform on ``[lo, hi]`` — node/process counts."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 1 <= self.lo <= self.hi:
            raise ConfigurationError("need 1 <= lo <= hi")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.uniform(np.log(self.lo), np.log(self.hi + 1), size=n)
        return np.floor(np.exp(u)).astype(np.int64).clip(self.lo, self.hi)

    def mean(self) -> float:
        if self.lo == self.hi:
            return float(self.lo)
        # Continuous approximation of the log-uniform mean.
        return float((self.hi - self.lo) / np.log(self.hi / self.lo))


@dataclass(frozen=True)
class Mixture(Distribution):
    """Weighted mixture of component distributions."""

    components: tuple[tuple[float, Distribution], ...]
    _weights: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("mixture needs at least one component")
        w = np.array([c[0] for c in self.components], dtype=np.float64)
        if (w <= 0).any():
            raise ConfigurationError("mixture weights must be positive")
        object.__setattr__(self, "_weights", w / w.sum())

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        choice = rng.choice(len(self.components), size=n, p=self._weights)
        out = np.empty(n, dtype=np.float64)
        for i, (_, dist) in enumerate(self.components):
            mask = choice == i
            cnt = int(mask.sum())
            if cnt:
                out[mask] = dist.sample(rng, cnt)
        return out

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, (_, c) in zip(self._weights, self.components))
        )


#: Representative request size per access bin (geometric mean of edges;
#: 2 GB for the open-ended 1G+ bin).
_BIN_REPRESENTATIVE = np.array(
    [
        np.sqrt(max(lo, 1.0) * hi) if np.isfinite(hi) else 2e9
        for lo, hi in zip(ACCESS_SIZE_BINS.edges[:-1], ACCESS_SIZE_BINS.edges[1:])
    ]
)


@dataclass(frozen=True)
class BinProfile:
    """A distribution over the ten Darshan access-size bins.

    Drives both the per-file request-size histograms (Figures 4/5) and the
    typical request size fed to the performance model.
    """

    probs: tuple[float, ...]
    _p: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.probs) != ACCESS_SIZE_BINS.nbins:
            raise ConfigurationError(
                f"need {ACCESS_SIZE_BINS.nbins} bin probabilities, got {len(self.probs)}"
            )
        p = np.asarray(self.probs, dtype=np.float64)
        if (p < 0).any() or p.sum() <= 0:
            raise ConfigurationError("bin probabilities must be non-negative, sum > 0")
        object.__setattr__(self, "_p", p / p.sum())

    @classmethod
    def from_dict(cls, weights: dict[str, float]) -> "BinProfile":
        """Build from ``{bin_label: weight}``; missing labels get 0."""
        probs = [0.0] * ACCESS_SIZE_BINS.nbins
        for label, w in weights.items():
            try:
                probs[ACCESS_SIZE_BINS.labels.index(label)] = w
            except ValueError:
                raise ConfigurationError(f"unknown access bin {label!r}") from None
        return cls(tuple(probs))

    def mean_request_size(self) -> float:
        """Expected request size under the profile."""
        return float((self._p * _BIN_REPRESENTATIVE).sum())

    def histograms(
        self, rng: np.random.Generator, nops: np.ndarray
    ) -> np.ndarray:
        """Multinomial request-size histograms, one row per file.

        ``nops[i]`` operations are distributed over the ten bins following
        the profile. Vectorized via the Poissonization trick is not exact;
        we use ``rng.multinomial``'s broadcasting, which handles the whole
        batch in one call.
        """
        nops = np.asarray(nops, dtype=np.int64)
        if (nops < 0).any():
            raise ConfigurationError("operation counts must be non-negative")
        return rng.multinomial(nops, self._p)

    def ops_for_bytes(self, nbytes: np.ndarray) -> np.ndarray:
        """Operation counts that move ``nbytes`` at the profile's mean
        request size (at least 1 op for any positive transfer)."""
        nbytes = np.asarray(nbytes, dtype=np.float64)
        ops = np.ceil(nbytes / self.mean_request_size()).astype(np.int64)
        return np.where(nbytes > 0, np.maximum(ops, 1), 0)

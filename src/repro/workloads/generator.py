"""The vectorized year-long workload generator.

Produces a :class:`~repro.store.recordstore.RecordStore` for one platform:
jobs sampled from the platform mix, application instances (Darshan logs)
per job, and per-file records for every file group — all in NumPy batches
per (archetype, group), never a per-file Python loop (hpc-parallel guide:
vectorize the hot path).

Per §3.1 accounting, every MPI-IO file also emits a POSIX *shadow row*
with the same bytes/times: MPI-IO performs its I/O through POSIX on these
file systems, and Darshan records both. Analyses that count unique files
or sum volumes select POSIX+STDIO rows; interface-usage analyses count
MPI-IO rows separately (Table 6 semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.errors import ConfigurationError
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.obs.tracer import trace_span
from repro.platforms import get_platform
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.rng import RngHub
from repro.scheduler.trace import SECONDS_PER_YEAR, ArrivalProcess, TraceConfig
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_CODES, empty_files, empty_jobs
from repro.units import GB, MiB
from repro.workloads.archetypes import ArchetypeSpec, FileGroupSpec
from repro.workloads.domains import (
    CORI_UNKNOWN_DOMAIN_FRACTION,
    domain_catalog,
)
from repro.workloads.mixes import cori_mix, summit_mix

#: Real yearly job counts (Table 2); scaled by ``GeneratorConfig.scale``.
TARGET_JOBS = {"summit": 281_600, "cori": 749_500}

#: Cap on per-file operation counts: keeps multinomial sampling bounded
#: while preserving byte totals (request sizes then skew large, which only
#: happens for the rare giant files where that is physically accurate).
MAX_OPS_PER_FILE = 2_000_000

#: Logs per file-generation RNG block. Randomness is keyed per
#: (archetype, group, block) — never per shard — so any sharding of the
#: block list samples the identical population (DESIGN.md §8). Small
#: enough to give the pool balance slack, large enough that per-block
#: stream setup is noise.
LOGS_PER_BLOCK = 128


#: Fraction of jobs whose Darshan logs carry no layer-attributed file
#: records (container-local scratch, pipes, /tmp): Table 5's exclusivity
#: partition sums to 244.9K of Summit's 281.6K jobs (13%) and 719.3K of
#: Cori's 749.5K (4%).
NO_IO_FRACTION = {"summit": 0.13, "cori": 0.04}


@dataclass(frozen=True)
class GeneratorConfig:
    """Scale and horizon of the synthetic year."""

    #: Fraction of the platform's real yearly jobs to generate.
    scale: float = 2e-3
    horizon: float = SECONDS_PER_YEAR
    #: Override the yearly job target (None = Table 2 value).
    target_jobs: int | None = None
    #: Override the no-I/O job fraction (None = platform default).
    no_io_fraction: float | None = None

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")


def _consistent_histograms(
    rng: np.random.Generator,
    profile,
    nops: np.ndarray,
    nbytes: np.ndarray,
) -> np.ndarray:
    """Request-size histograms consistent with per-file byte totals.

    Draw from the profile's multinomial, then repair the (rare) files
    whose histogram cannot realize their byte total — floor too high
    (every op at its bin's lower edge already exceeds the bytes) or
    capacity too low (every op maxed out still falls short). Repaired
    files put all ops in the bin containing their mean request size,
    which always brackets the total. This keeps the log-level invariant
    ``sum(lower_edges) <= bytes <= sum(upper_edges)`` that
    :mod:`repro.darshan.validate` enforces and the object-path runtime
    relies on.
    """
    hist = profile.histograms(rng, nops)
    edges = np.asarray(ACCESS_SIZE_BINS.edges)
    lower = edges[:-1].copy()
    lower[0] = 1.0  # a data op moves at least one byte
    upper = edges[1:] - 1.0  # inf stays inf
    floor = hist @ lower
    capacity = hist @ np.where(np.isfinite(upper), upper, 0.0)
    capacity[(hist[:, -1] > 0)] = np.inf
    nbytes_f = nbytes.astype(np.float64)
    bad = ((floor > nbytes_f) | (capacity < nbytes_f)) & (nops > 0)
    if bad.any():
        idx = np.flatnonzero(bad)
        mean_req = nbytes_f[idx] / np.maximum(nops[idx], 1)
        bins = ACCESS_SIZE_BINS.index_array(np.maximum(mean_req, 1.0))
        hist[idx] = 0
        hist[idx, bins] = nops[idx]
    return hist


@dataclass(frozen=True)
class _FileUnit:
    """One RNG block of one (archetype, file-group): the unit of sharding."""

    archetype: int
    group: int
    block: int
    log_lo: int
    log_hi: int
    #: Expected file rows (for cost-balanced shard planning).
    cost: float


@dataclass
class _JobBatch:
    """Columnar job attributes for one archetype's jobs."""

    job_ids: np.ndarray
    user_ids: np.ndarray
    nnodes: np.ndarray
    nprocs: np.ndarray
    runtime: np.ndarray
    start: np.ndarray
    domain: np.ndarray
    instances: np.ndarray
    bb_nodes: np.ndarray  # DataWarp BB nodes (0 = no allocation)
    no_io: np.ndarray = field(default=None)  # type: ignore[assignment]
    # Per-log expansion (filled by _expand_logs):
    log_ids: np.ndarray = field(default=None)  # type: ignore[assignment]
    log_job_index: np.ndarray = field(default=None)  # type: ignore[assignment]


class WorkloadGenerator:
    """Generates one platform's synthetic year."""

    def __init__(
        self,
        platform: str,
        config: GeneratorConfig | None = None,
        mix: list[tuple[float, ArchetypeSpec]] | None = None,
        perf: PerfModel | None = None,
        machine: Machine | None = None,
    ):
        # ``machine`` lets a compiled spec generate against a degraded
        # variant (fault overlays) while keeping the platform's name,
        # domain catalog, and RNG namespace.
        self.machine: Machine = machine if machine is not None else get_platform(platform)
        self.platform = platform.lower()
        self.config = config or GeneratorConfig()
        if mix is None:
            mix = summit_mix() if self.platform == "summit" else cori_mix()
        weights = np.array([w for w, _ in mix], dtype=np.float64)
        if (weights <= 0).any():
            raise ConfigurationError("mix weights must be positive")
        self.mix = [spec for _, spec in mix]
        self.weights = weights / weights.sum()
        self.domains = domain_catalog(self.platform)
        self._domain_code = {d: i for i, d in enumerate(self.domains)}
        if perf is None:
            from repro.iosim.netmodel import network_for

            perf = PerfModel(network=network_for(self.platform))
        self.perf = perf
        # Extension catalog is fixed up-front from the mix so codes are
        # stable across filters/concats.
        exts: list[str] = []
        for spec in self.mix:
            for g in spec.groups:
                for e in g.ext_probs:
                    if e and e not in exts:
                        exts.append(e)
        self.extensions = tuple(exts)
        self._ext_code = {e: i for i, e in enumerate(self.extensions)}

    # ------------------------------------------------------------------
    def generate(
        self, seed_or_hub: int | RngHub, *, jobs: int | None = None
    ) -> RecordStore:
        """Generate the synthetic year. Deterministic in the seed.

        ``jobs`` fans file-row generation out over a process pool; the
        result is byte-identical for every worker count because all
        randomness is keyed per (archetype, group, log-block) unit and
        shards are contiguous slices of the unit list (DESIGN.md §8).
        """
        from repro.parallel import (
            SHARDS_PER_WORKER,
            contiguous_shards,
            resolve_jobs,
            run_sharded,
        )
        from repro.store.merge import merge_stores

        hub = seed_or_hub if isinstance(seed_or_hub, RngHub) else RngHub(seed_or_hub)
        hub = hub.child(f"workload.{self.platform}")

        with trace_span("workloads.generate", "workloads") as sp:
            batches = self._sample_jobs(hub)
            units = self._plan_units(batches)
            njobs = resolve_jobs(jobs)
            if sp is not None:
                sp.add(platform=self.platform, jobs=njobs, units=len(units))
            if njobs <= 1 or len(units) <= 1:
                return self._generate_shard_store(hub, batches, units)
            slices = contiguous_shards(
                [u.cost for u in units], njobs * SHARDS_PER_WORKER
            )
            payloads = [(self, hub, units[sl]) for sl in slices]
            # Shard tables come back through the shared-memory fabric
            # (headers on the pipe, bytes in /dev/shm); merge_stores
            # copies into the final store, then the segments are freed.
            return run_sharded(
                _generate_shard, payloads, jobs=njobs, shm=True,
                reduce=lambda shards: merge_stores(shards, nlogs_rule="max"),
            )

    def _plan_units(self, batches: list[_JobBatch | None]) -> list[_FileUnit]:
        """The deterministic unit list: every (archetype, group, block)."""
        units: list[_FileUnit] = []
        for ai, (spec, batch) in enumerate(zip(self.mix, batches)):
            if batch is None:
                continue
            nlogs = len(batch.log_ids)
            if nlogs == 0:
                continue
            for gi, group in enumerate(spec.groups):
                for b, lo in enumerate(range(0, nlogs, LOGS_PER_BLOCK)):
                    hi = min(lo + LOGS_PER_BLOCK, nlogs)
                    units.append(
                        _FileUnit(ai, gi, b, lo, hi, (hi - lo) * group.files_per_run)
                    )
        return units

    def _generate_unit(
        self,
        unit: _FileUnit,
        batches: list[_JobBatch | None],
        hub: RngHub,
    ) -> np.ndarray | None:
        spec = self.mix[unit.archetype]
        batch = batches[unit.archetype]
        group = spec.groups[unit.group]
        rng = hub.generator(
            f"files.{spec.name}.{group.name}.{unit.group}.b{unit.block}"
        )
        return self._generate_block(
            spec, group, batch, rng, unit.log_lo, unit.log_hi
        )

    def _generate_shard_store(
        self,
        hub: RngHub,
        batches: list[_JobBatch | None],
        units: list[_FileUnit],
    ) -> RecordStore:
        """One shard's store: its units' file rows plus the full job table.

        Every shard carries the complete job table (job sampling is global
        and cheap); :func:`repro.store.merge.merge_stores` deduplicates the
        rows and ORs the shard-local ``used_bb`` flags. With the full unit
        list this *is* the serial generate path.
        """
        with trace_span("workloads.assemble", "workloads") as sp:
            file_tables = []
            for unit in units:
                table = self._generate_unit(unit, batches, hub)
                if table is not None and len(table):
                    file_tables.append(table)
            files = np.concatenate(file_tables) if file_tables else empty_files(0)
            if sp is not None:
                sp.add(units=len(units), rows=len(files))
        insystem = files["job_id"][files["layer"] == LAYER_CODES["insystem"]]
        used_bb = {int(j): True for j in np.unique(insystem)}
        jobs = self._job_table(batches, used_bb)
        target = self.config.target_jobs or TARGET_JOBS[self.platform]
        return RecordStore(
            self.platform,
            files,
            jobs,
            domains=self.domains,
            extensions=self.extensions,
            scale=max(1, round(target * self.config.scale)) / target,
        )

    # ------------------------------------------------------------------
    def _sample_jobs(self, hub: RngHub) -> list[_JobBatch | None]:
        """Sample job-level attributes, grouped by archetype."""
        with trace_span("workloads.sample_jobs", "workloads"):
            return self._sample_jobs_inner(hub)

    def _sample_jobs_inner(self, hub: RngHub) -> list[_JobBatch | None]:
        rng = hub.generator("jobs")
        target = self.config.target_jobs or TARGET_JOBS[self.platform]
        njobs = max(1, round(target * self.config.scale))

        arrivals = ArrivalProcess(
            TraceConfig(target_jobs=njobs, horizon=self.config.horizon)
        ).sample(rng)
        # Poisson count may differ slightly from njobs; use what we got.
        njobs = len(arrivals)
        if njobs == 0:
            arrivals = np.array([0.0])
            njobs = 1

        assignment = self._stratified_assignment(rng, njobs)
        job_ids = np.arange(1, njobs + 1, dtype=np.int64)
        # A small user pool with skewed activity (few users run many jobs).
        npool = max(4, njobs // 8)
        user_ids = 1000 + (rng.zipf(1.6, size=njobs) % npool).astype(np.int64)

        out: list[_JobBatch | None] = []
        for ai, spec in enumerate(self.mix):
            mask = assignment == ai
            n = int(mask.sum())
            if n == 0:
                out.append(None)
                continue
            arng = hub.generator(f"jobs.{spec.name}")
            nnodes = spec.nnodes.sample(arng, n).astype(np.int64)
            nnodes = np.clip(nnodes, 1, self.machine.compute_nodes)
            nprocs = nnodes * spec.procs_per_node
            runtime = spec.runtime.sample(arng, n)
            instances = np.maximum(
                spec.instances.sample(arng, n).astype(np.int64), 1
            )
            domain = self._sample_domains(spec, arng, n)
            bb_nodes = np.zeros(n, dtype=np.int64)
            if spec.bb_capacity is not None:
                granularity = self.machine.in_system.params.get(
                    "granularity", 20 * GB
                )
                cap = spec.bb_capacity.sample(arng, n)
                bb_nodes = np.clip(
                    np.ceil(cap / granularity).astype(np.int64),
                    1,
                    self.machine.in_system.server_count,
                )
            no_io_frac = (
                self.config.no_io_fraction
                if self.config.no_io_fraction is not None
                else NO_IO_FRACTION.get(self.platform, 0.0)
            )
            out.append(
                _JobBatch(
                    job_ids=job_ids[mask],
                    user_ids=user_ids[mask],
                    nnodes=nnodes,
                    nprocs=nprocs,
                    runtime=runtime,
                    start=arrivals[mask],
                    domain=domain,
                    instances=instances,
                    bb_nodes=bb_nodes,
                    no_io=arng.random(n) < no_io_frac,
                )
            )
        for batch in out:
            if batch is not None:
                self._expand_logs(batch)
        return out

    def _stratified_assignment(
        self, rng: np.random.Generator, njobs: int
    ) -> np.ndarray:
        """Archetype per job, stratified to the expected counts.

        Plain multinomial sampling makes rare-but-heavy archetypes (the
        SCNL pipelines: ~1% of jobs carrying ~20% of all files, Table 5 vs
        Table 3) wildly variable at small scales. Instead each archetype
        gets ``floor(weight * njobs)`` jobs plus a Bernoulli for the
        fractional remainder — unbiased, with per-archetype variance < 1.
        The assignment is then shuffled over job slots so arrival times
        stay exchangeable.
        """
        expected = self.weights * njobs
        counts = np.floor(expected).astype(np.int64)
        frac = expected - counts
        counts += rng.random(len(counts)) < frac
        # Reconcile to exactly njobs (Bernoulli sum may be off by a few).
        diff = njobs - int(counts.sum())
        while diff != 0:
            i = int(rng.choice(len(counts), p=self.weights))
            if diff > 0:
                counts[i] += 1
                diff -= 1
            elif counts[i] > 0:
                counts[i] -= 1
                diff += 1
        assignment = np.repeat(np.arange(len(self.mix)), counts)
        rng.shuffle(assignment)
        return assignment

    def _sample_domains(
        self, spec: ArchetypeSpec, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        names = list(spec.domains)
        probs = np.array([spec.domains[d] for d in names], dtype=np.float64)
        probs /= probs.sum()
        codes = np.array([self._domain_code[d] for d in names], dtype=np.int16)
        # Stratified like the archetype assignment: rare archetypes have
        # very few jobs, and a multinomial draw would make the per-domain
        # volume shares of Figures 7/10 pure noise at small scales.
        expected = probs * n
        counts = np.floor(expected).astype(np.int64)
        counts += rng.random(len(counts)) < (expected - counts)
        while counts.sum() > n:
            counts[np.argmax(counts)] -= 1
        while counts.sum() < n:
            counts[np.argmax(expected - counts)] += 1
        out = codes[np.repeat(np.arange(len(names)), counts)]
        rng.shuffle(out)
        if self.platform == "cori":
            # Projects without a NEWT domain record (§3.3.2).
            unknown = rng.random(n) < CORI_UNKNOWN_DOMAIN_FRACTION
            out = np.where(unknown, np.int16(-1), out)
        return out

    def _expand_logs(self, batch: _JobBatch) -> None:
        """Assign globally-unique log ids: one per application instance."""
        total = int(batch.instances.sum())
        # Job-id striping keeps ids unique across batches without global
        # coordination: id = job_id * 2^20 + per-job instance index.
        per_job_idx = np.concatenate(
            [np.arange(k, dtype=np.int64) for k in batch.instances]
        ) if total else np.empty(0, dtype=np.int64)
        job_index = np.repeat(
            np.arange(len(batch.job_ids), dtype=np.int64), batch.instances
        )
        batch.log_ids = batch.job_ids[job_index] * (1 << 20) + per_job_idx
        batch.log_job_index = job_index

    # ------------------------------------------------------------------
    def _generate_block(
        self,
        spec: ArchetypeSpec,
        group: FileGroupSpec,
        batch: _JobBatch,
        rng: np.random.Generator,
        log_lo: int,
        log_hi: int,
    ) -> np.ndarray | None:
        """File rows of one (archetype, group) log block, vectorized."""
        nlogs = log_hi - log_lo
        if nlogs <= 0:
            return None
        counts = rng.poisson(group.files_per_run, size=nlogs)
        # Jobs flagged no-I/O keep their logs (Darshan still runs) but
        # produce no layer-attributed file records (Table 5's gap between
        # the exclusivity partition and the total job count).
        counts[batch.no_io[batch.log_job_index[log_lo:log_hi]]] = 0
        total = int(counts.sum())
        if total == 0:
            return None

        log_index = log_lo + np.repeat(np.arange(nlogs, dtype=np.int64), counts)
        job_index = batch.log_job_index[log_index]

        files = empty_files(total)
        files["job_id"] = batch.job_ids[job_index]
        files["log_id"] = batch.log_ids[log_index]
        files["user_id"] = batch.user_ids[job_index]
        files["nprocs"] = batch.nprocs[job_index].astype(np.int32)
        files["domain"] = batch.domain[job_index]
        files["layer"] = LAYER_CODES[group.layer]
        files["interface"] = int(group.interface)
        files["record_id"] = rng.integers(
            0, np.iinfo(np.uint64).max, size=total, dtype=np.uint64
        )

        # Extensions.
        if group.ext_probs:
            names = list(group.ext_probs)
            p = np.array([group.ext_probs[e] for e in names], dtype=np.float64)
            p /= p.sum()
            codes = np.array(
                [self._ext_code.get(e, -1) for e in names], dtype=np.int16
            )
            files["ext"] = codes[rng.choice(len(names), size=total, p=p)]

        # Op-class and byte volumes.
        opclass = rng.choice(3, size=total, p=np.asarray(group.opclass_probs))
        readers = opclass != 2  # RO or RW
        writers = opclass != 0  # RW or WO
        bytes_read = np.zeros(total, dtype=np.int64)
        bytes_written = np.zeros(total, dtype=np.int64)
        nr = int(readers.sum())
        nw = int(writers.sum())
        if nr:
            bytes_read[readers] = np.maximum(
                group.read_size.sample(rng, nr), 1
            ).astype(np.int64)
        if nw:
            bytes_written[writers] = np.maximum(
                group.write_size.sample(rng, nw), 1
            ).astype(np.int64)
        files["bytes_read"] = bytes_read
        files["bytes_written"] = bytes_written

        # Operation counts and request-size histograms. STDIO keeps byte
        # totals and op counts but no histogram (the Darshan gap).
        read_ops = np.minimum(
            group.read_profile.ops_for_bytes(bytes_read), MAX_OPS_PER_FILE
        )
        write_ops = np.minimum(
            group.write_profile.ops_for_bytes(bytes_written), MAX_OPS_PER_FILE
        )
        files["reads"] = read_ops
        files["writes"] = write_ops
        if group.interface.records_request_sizes:
            files["read_hist"] = _consistent_histograms(
                rng, group.read_profile, read_ops, bytes_read
            )
            files["write_hist"] = _consistent_histograms(
                rng, group.write_profile, write_ops, bytes_written
            )

        # Shared-file flag and ranks.
        shared = rng.random(total) < group.shared_prob
        nprocs_f = files["nprocs"].astype(np.int64)
        ranks = rng.integers(0, np.maximum(nprocs_f, 1))
        files["rank"] = np.where(shared, -1, ranks).astype(np.int32)

        # Transfer times from the performance model.
        self._assign_times(files, group, batch, job_index, shared, rng)
        return files

    # ------------------------------------------------------------------
    def _assign_times(
        self,
        files: np.ndarray,
        group: FileGroupSpec,
        batch: _JobBatch,
        job_index: np.ndarray,
        shared: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        layer = self.machine.layers[
            "pfs" if group.layer == "pfs" else "insystem"
        ]
        total = len(files)
        parallelism = self._file_parallelism(
            files, group, batch, job_index, rng
        )
        collective = np.full(total, group.collective)
        for direction, bytes_col, ops_col, time_col in (
            ("read", "bytes_read", "reads", "read_time"),
            ("write", "bytes_written", "writes", "write_time"),
        ):
            nbytes = files[bytes_col].astype(np.float64)
            ops = np.maximum(files[ops_col].astype(np.float64), 1.0)
            spec = TransferSpec(
                nbytes=nbytes,
                request_size=np.maximum(nbytes / ops, 1.0),
                nprocs=files["nprocs"].astype(np.float64),
                file_parallelism=parallelism,
                shared=shared,
                collective=collective,
                nnodes=batch.nnodes[job_index].astype(np.float64),
            )
            files[time_col] = self.perf.transfer_time(
                layer, group.interface, direction, spec, rng
            )
        # Metadata time: opens/closes/seeks at the layer's latency floor.
        nmeta = 2.0 + 0.01 * (files["reads"] + files["writes"])
        files["meta_time"] = nmeta * layer.base_latency * rng.lognormal(
            0.0, 0.4, size=total
        )

    def _file_parallelism(
        self,
        files: np.ndarray,
        group: FileGroupSpec,
        batch: _JobBatch,
        job_index: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Layout parallelism per file, per platform/layer semantics."""
        total = len(files)
        sizes = (files["bytes_read"] + files["bytes_written"]).astype(np.float64)
        if group.layer == "pfs":
            if self.platform == "summit":
                # GPFS: one NSD per 16 MiB block, up to the server pool.
                block = self.machine.pfs.params.get("block_size", 16 * MiB)
                return np.clip(
                    np.ceil(sizes / block), 1, self.machine.pfs.server_count
                )
            # Lustre on Cori: default stripe count 1; a minority of large
            # files belong to users who tuned striping (§2.1.2, §5).
            stripes = np.ones(total, dtype=np.float64)
            big = sizes > 10 * GB
            tuned = big & (rng.random(total) < 0.4)
            stripes[tuned] = 2 ** rng.integers(1, 6, size=int(tuned.sum()))
            return stripes
        if self.platform == "summit":
            # SCNL: one NVMe per job node, but a file only spans the nodes
            # holding its segments (UnifyFS laminates in ~128 MiB chunks),
            # so small files see a single device.
            segments = np.maximum(np.ceil(sizes / (128 * MiB)), 1.0)
            return np.minimum(batch.nnodes[job_index].astype(np.float64), segments)
        # CBB: bounded by the job's DataWarp allocation width and by how
        # many ~1 GiB substripes the file actually occupies.
        substripes = np.maximum(np.ceil(sizes / (1024 * MiB)), 1.0)
        return np.minimum(
            np.maximum(batch.bb_nodes[job_index], 1).astype(np.float64), substripes
        )

    # ------------------------------------------------------------------
    def _job_table(
        self, batches: list[_JobBatch | None], used_bb: dict[int, bool]
    ) -> np.ndarray:
        njobs = sum(len(b.job_ids) for b in batches if b is not None)
        jobs = empty_jobs(njobs)
        pos = 0
        for batch in batches:
            if batch is None:
                continue
            n = len(batch.job_ids)
            sl = slice(pos, pos + n)
            jobs["job_id"][sl] = batch.job_ids
            jobs["user_id"][sl] = batch.user_ids
            jobs["nnodes"][sl] = batch.nnodes.astype(np.int32)
            jobs["nprocs"][sl] = batch.nprocs.astype(np.int32)
            jobs["domain"][sl] = batch.domain
            jobs["runtime"][sl] = batch.runtime
            jobs["start_time"][sl] = batch.start
            jobs["nlogs"][sl] = batch.instances.astype(np.int32)
            jobs["used_bb"][sl] = [
                1 if used_bb.get(int(j), False) else 0 for j in batch.job_ids
            ]
            pos += n
        return jobs[np.argsort(jobs["job_id"], kind="stable")]


def _generate_shard(payload) -> RecordStore:
    """Pool worker: regenerate the (cheap, global) job plan, then the
    shard's file units. Module-level so it pickles under any start method."""
    generator, hub, units = payload
    with trace_span("workloads.shard", "workloads") as sp:
        if sp is not None:
            sp.add(platform=generator.platform, units=len(units))
        batches = generator._sample_jobs(hub)
        store = generator._generate_shard_store(hub, batches, list(units))
        if sp is not None:
            sp.add(rows=len(store.files))
        return store


def generate_with_shadows(
    generator: WorkloadGenerator,
    seed_or_hub: int | RngHub,
    *,
    jobs: int | None = None,
) -> RecordStore:
    """Generate a store and append the POSIX shadow rows for MPI-IO files.

    Kept separate from :meth:`WorkloadGenerator.generate` so analyses can
    be tested against both representations; the study pipeline always uses
    this function.
    """
    store = generator.generate(seed_or_hub, jobs=jobs)
    with trace_span("workloads.shadows", "workloads") as sp:
        mpiio = store.files[store.files["interface"] == int(IOInterface.MPIIO)]
        if sp is not None:
            sp.add(shadow_rows=len(mpiio))
        if not len(mpiio):
            return store
        shadows = mpiio.copy()
        shadows["interface"] = int(IOInterface.POSIX)
        files = np.concatenate([store.files, shadows])
    return RecordStore(
        store.platform,
        files,
        store.jobs,
        domains=store.domains,
        extensions=store.extensions,
        scale=store.scale,
    )

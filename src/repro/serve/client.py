"""Blocking NDJSON client for an AnalysisServer.

Maps wire errors back onto the typed exceptions from
:mod:`repro.errors`, so ``except ServiceOverloadError`` works the same
whether the engine is in-process or across a socket.
"""

from __future__ import annotations

import json
import socket
from typing import Mapping

from repro import errors as _errors
from repro.errors import ReproError, ServeError

#: Extra seconds of socket patience beyond a request's own deadline, so
#: the server's QueryTimeoutError response wins the race against our
#: socket timeout.
_GRACE = 10.0


def _rebuild_error(payload: Mapping) -> ReproError:
    """The typed exception a wire error corresponds to."""
    name = str(payload.get("type", "ServeError"))
    message = str(payload.get("message", "remote error"))
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ServeError(f"{name}: {message}")


class ServeClient:
    """One TCP connection to a ``repro serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7786,
        *,
        connect_timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), connect_timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- request/response ----------------------------------------------------
    def request(
        self,
        query: str,
        params: Mapping | None = None,
        *,
        timeout: float | None = None,
    ) -> dict:
        """Send one request and return the raw response envelope."""
        self._next_id += 1
        body = {"id": self._next_id, "query": query, "params": dict(params or {})}
        if timeout is not None:
            body["timeout"] = timeout
        self._sock.settimeout(timeout + _GRACE if timeout is not None else None)
        self._sock.sendall(json.dumps(body).encode() + b"\n")
        line = self._reader.readline()
        if not line:
            raise ServeError("server closed the connection mid-request")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id} (is the connection shared "
                "between threads?)"
            )
        return response

    def query(
        self,
        name: str,
        params: Mapping | None = None,
        *,
        timeout: float | None = None,
    ) -> dict:
        """The serialized result of one query; raises typed errors."""
        response = self.request(name, params, timeout=timeout)
        if not response.get("ok"):
            raise _rebuild_error(response.get("error") or {})
        return response["result"]

    # -- conveniences --------------------------------------------------------
    def stats(self) -> dict:
        return self.query("stats")

    def list_queries(self) -> dict:
        return self.query("queries")["queries"]

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServeClient({self.host!r}, {self.port})"

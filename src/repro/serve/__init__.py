"""Concurrent analysis serving over a loaded RecordStore.

The paper's exhibits (Tables 2-6, Figures 3-12) were one-shot CLI runs;
this package turns them into a multi-client service:

- :mod:`repro.serve.registry` — the named-query registry (every
  ``analysis/`` entry point plus ``advise``/``shapes``), shared with
  ``repro analyze`` so the CLI and the service can never drift;
- :mod:`repro.serve.engine` — :class:`QueryEngine`: bounded worker
  pool with admission control, request coalescing, and an LRU result
  cache keyed on the store generation;
- :mod:`repro.serve.metrics` — counters and latency histograms
  (p50/p95/p99) exposed through the ``stats`` query;
- :mod:`repro.serve.server` / :mod:`repro.serve.client` — a
  newline-delimited-JSON socket protocol (``repro serve`` /
  ``repro query``).

Everything is stdlib-only: ``asyncio`` for the socket front end,
``concurrent.futures`` for the analysis workers.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.coalesce import InFlightTable
from repro.serve.engine import QueryEngine
from repro.serve.metrics import Metrics
from repro.serve.registry import QuerySpec, default_registry, serialize_result
from repro.serve.server import AnalysisServer, BackgroundServer, run_server

__all__ = [
    "AnalysisServer",
    "BackgroundServer",
    "InFlightTable",
    "Metrics",
    "QueryEngine",
    "QuerySpec",
    "ResultCache",
    "ServeClient",
    "default_registry",
    "run_server",
    "serialize_result",
]

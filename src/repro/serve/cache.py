"""LRU result cache keyed on (query, params, store generation).

Because the store generation is part of the key, a mutation
(``RecordStore.extend`` / ``invalidate``) implicitly invalidates every
cached result without the cache ever observing the store: stale entries
simply stop being addressable and age out of the LRU order. That is the
same invalidation discipline :class:`repro.analysis.context.AnalysisContext`
uses, lifted to whole query results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

_MISS = object()


class ResultCache:
    """Thread-safe LRU mapping of query keys to analysis results.

    ``max_entries=0`` disables caching entirely (every lookup misses,
    every insert is dropped) — the coalesced-regime benchmark uses that
    to keep identical bursts in flight instead of cache-resident.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> tuple[bool, object]:
        """(hit, value); a hit refreshes the entry's LRU position."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: Hashable, value: object) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[Hashable]:
        """Snapshot of cached keys, LRU order (next-to-evict first).

        Counts as neither hit nor miss — introspection for
        :meth:`QueryEngine.refresh`, which must not skew the hit rate.
        """
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

"""Service observability: counters and latency histograms.

The paper's performance sections live on distributions, not means
(Figures 11/12 are box plots precisely because production-load latency
has heavy tails); the serving layer follows suit and reports
p50/p95/p99 per query, not averages. Everything here is thread-safe and
allocation-light: a counter is one int under a lock, a histogram is a
fixed-size reservoir ring buffer (newest ``window`` samples win), so
recording stays O(1) on the request path and percentile sorting is paid
only at snapshot time.

Timing comes from the one shared clock (:mod:`repro.obs.clock`, i.e.
``time.perf_counter_ns``): the request path measures integer-nanosecond
deltas and feeds them to :meth:`LatencyHistogram.record_ns`, so latency
reservoirs and the span ring buffer are directly comparable — a span's
``dur_ns`` and the histogram sample for the same request are the same
number.
"""

from __future__ import annotations

import threading

from repro.obs.clock import ns_to_s


class Counter:
    """A monotonically increasing, thread-safe event counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class LatencyHistogram:
    """Latency samples with percentile snapshots.

    Keeps the newest ``window`` samples in a ring buffer; count, sum,
    and max are exact over the histogram's whole life, percentiles are
    over the window. ``window`` defaults high enough that a bench run
    or a test never wraps.
    """

    __slots__ = ("_count", "_lock", "_max", "_samples", "_total", "_window")

    def __init__(self, window: int = 8192) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window = window
        self._samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record_ns(self, ns: int) -> None:
        """Record one sample measured as a ``perf_ns`` delta."""
        self.record(ns_to_s(ns))

    def record(self, seconds: float) -> None:
        with self._lock:
            if len(self._samples) < self._window:
                self._samples.append(seconds)
            else:
                self._samples[self._count % self._window] = seconds
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Nearest-rank percentile over a sorted sample list."""
        rank = -(-q * len(ordered) // 100)  # ceil(q * n / 100)
        return ordered[max(0, min(len(ordered), int(rank)) - 1)]

    def snapshot(self) -> dict[str, float]:
        """count/mean/p50/p95/p99/max in milliseconds."""
        with self._lock:
            samples = sorted(self._samples)
            count, total, peak = self._count, self._total, self._max
        if not samples:
            return {"count": 0}
        ms = 1e3
        return {
            "count": count,
            "mean_ms": round(total / count * ms, 3),
            "p50_ms": round(self._percentile(samples, 50) * ms, 3),
            "p95_ms": round(self._percentile(samples, 95) * ms, 3),
            "p99_ms": round(self._percentile(samples, 99) * ms, 3),
            "max_ms": round(peak * ms, 3),
        }


class Metrics:
    """A named registry of counters and latency histograms.

    Instruments are created on first touch, so call sites never
    pre-declare; ``snapshot()`` is the one read path (the engine's
    ``stats`` query).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def timer(self, name: str) -> LatencyHistogram:
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = LatencyHistogram()
            return timer

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            timers = dict(self._timers)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "latency": {n: t.snapshot() for n, t in sorted(timers.items())},
        }

"""In-flight request coalescing: N identical queries, one computation.

The serving-layer analogue of MPI-IO collective buffering (the paper's
§4 aggregation finding): when many clients ask the same question at the
same time, answering it once and fanning the result out beats queueing N
copies of the same scan. The table maps a query key to the
:class:`~concurrent.futures.Future` of the computation currently
answering it; the first arrival becomes the *leader* (and owns running
the computation), everyone else attaches to the leader's future and
consumes no pool slot.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Hashable


class InFlightTable:
    """Tracks the single in-flight computation per query key."""

    def __init__(self) -> None:
        self._futures: dict[Hashable, Future] = {}
        self._lock = threading.Lock()

    def join(self, key: Hashable) -> tuple[bool, Future]:
        """(is_leader, shared future) for a key.

        The leader must eventually complete the future *and then* call
        :meth:`finish`; followers just wait on the future.
        """
        with self._lock:
            future = self._futures.get(key)
            if future is not None:
                return False, future
            future = Future()
            self._futures[key] = future
            return True, future

    def finish(self, key: Hashable) -> None:
        """Drop a key once its future is resolved (leader-only).

        Callers must resolve the future *before* finishing (and, on
        success, populate the result cache first), so a request arriving
        in between sees either the in-flight future or the cached
        result — never a gap that would recompute.
        """
        with self._lock:
            self._futures.pop(key, None)

    def __len__(self) -> int:
        return len(self._futures)

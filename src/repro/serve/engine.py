"""QueryEngine: bounded, coalescing, cached analysis execution.

The request path, in order:

1. **registry** — resolve the query name to a :class:`QuerySpec`
   (:exc:`~repro.errors.UnknownQueryError` otherwise) and validate its
   parameters;
2. **cache** — (query, params, store generation) hit returns a finished
   future immediately;
3. **coalesce** — an identical request already in flight returns that
   request's future; the analysis runs exactly once;
4. **admission** — a leader must claim one of
   ``max_workers + max_queue`` slots *without blocking*; when none is
   free the request (and everyone coalesced onto it) fails fast with
   :exc:`~repro.errors.ServiceOverloadError` instead of growing an
   unbounded queue;
5. **execute** — a pool thread runs the analysis through the store's
   shared (thread-safe) :class:`~repro.analysis.context.AnalysisContext`,
   records latency, populates the cache, resolves the future.

Deadlines bound the *caller's wait* (:meth:`QueryEngine.query`'s
``timeout`` raises :exc:`~repro.errors.QueryTimeoutError`); worker
threads cannot be interrupted, so the stray computation still lands in
the cache for the retry.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from threading import BoundedSemaphore, Lock
from typing import Mapping

from repro.errors import QueryTimeoutError, ServiceOverloadError, UnknownQueryError
from repro.obs.clock import perf_ns
from repro.obs.integrate import analysis_span
from repro.obs.tracer import trace_event, trace_span
from repro.serve.cache import ResultCache
from repro.serve.coalesce import InFlightTable
from repro.serve.metrics import Metrics
from repro.serve.registry import (
    QuerySpec,
    default_registry,
    serialize_result,
    validate_params,
)
from repro.store.recordstore import RecordStore

#: Queries answered by the engine itself (no analysis, no pool slot).
_META_QUERIES = ("stats", "queries")


class QueryEngine:
    """Serves named analysis queries over one loaded RecordStore.

    ``extra_queries`` lets tests (and future subsystems) register
    additional :class:`QuerySpec` entries without touching the default
    registry.
    """

    def __init__(
        self,
        store: RecordStore,
        *,
        max_workers: int = 4,
        max_queue: int = 32,
        cache_entries: int = 256,
        default_timeout: float | None = None,
        analysis_jobs: int | None = None,
        extra_queries: Mapping[str, QuerySpec] | None = None,
        registry: Mapping[str, QuerySpec] | None = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if analysis_jobs is not None:
            # Sharded analysis fans out over a process pool; create it
            # now, from the main thread — forking lazily from a worker
            # thread mid-request is the classic multiprocessing
            # deadlock (see repro.parallel.warm_pool).
            from repro.parallel import warm_pool

            store.set_analysis_jobs(analysis_jobs)
            warm_pool(analysis_jobs)
        self.store = store
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        # ``registry`` replaces the default registry wholesale — the
        # federation front-end serves *only* federated specs, so plain
        # single-store queries cannot silently answer from whichever
        # member happens to back the engine.
        self.registry = dict(registry) if registry is not None else default_registry()
        if extra_queries:
            self.registry.update(extra_queries)
        self.metrics = Metrics()
        # Pre-register the standard counters so the `stats` wire surface
        # always carries the same keys, even on an idle engine.
        for name in ("requests", "cache_hits", "cache_misses", "coalesced",
                     "rejected", "timeouts", "executions", "errors",
                     "refreshed"):
            self.metrics.counter(name)
        self.cache = ResultCache(cache_entries)
        self._inflight = InFlightTable()
        self._slots = BoundedSemaphore(max_workers + max_queue)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._ctx_lock = Lock()
        self._ctx = store.analysis()

    # -- registry ------------------------------------------------------------
    def query_names(self) -> list[str]:
        """Every servable query name (registry plus engine meta queries)."""
        return sorted((*self.registry, *_META_QUERIES))

    def spec(self, name: str) -> QuerySpec | None:
        return self.registry.get(name)

    def _context(self):
        """The store's current analysis context (refreshed on mutation)."""
        with self._ctx_lock:
            if self._ctx.stale:
                self._ctx = self.store.analysis()
            return self._ctx

    # -- request path --------------------------------------------------------
    def submit(self, name: str, params: Mapping | None = None) -> Future:
        """Admit one request; the future resolves to the analysis result.

        Raises synchronously for malformed requests (unknown query /
        bad params); overload is delivered *through the future* so
        coalesced followers of a shed leader all observe it.
        """
        metrics = self.metrics
        metrics.counter("requests").inc()
        if name in _META_QUERIES:
            future: Future = Future()
            future.set_result(
                self.stats() if name == "stats" else self.describe()
            )
            return future
        spec = self.registry.get(name)
        if spec is None:
            metrics.counter("unknown").inc()
            raise UnknownQueryError(
                f"unknown query {name!r}; available: "
                f"{', '.join(self.query_names())}"
            )
        params = validate_params(spec, params)
        metrics.counter(f"requests.{name}").inc()

        if not spec.cacheable:
            return self._admit(spec, params, key=None)

        key = (name, tuple(sorted(params.items())), self.store.generation)
        hit, value = self.cache.get(key)
        if hit:
            metrics.counter("cache_hits").inc()
            trace_event("serve.cache_hit", "serve", query=name)
            future = Future()
            future.set_result(value)
            return future
        metrics.counter("cache_misses").inc()

        leader, future = self._inflight.join(key)
        if not leader:
            metrics.counter("coalesced").inc()
            trace_event("serve.coalesced", "serve", query=name)
            return future
        return self._admit(spec, params, key=key, future=future)

    def _admit(
        self,
        spec: QuerySpec,
        params: dict,
        *,
        key,
        future: Future | None = None,
    ) -> Future:
        """Claim a pool slot for a leader, or shed the request."""
        if future is None:
            future = Future()
        if not self._slots.acquire(blocking=False):
            if key is not None:
                self._inflight.finish(key)
            self.metrics.counter("rejected").inc()
            trace_event("serve.shed", "serve", query=spec.name)
            future.set_exception(
                ServiceOverloadError(
                    f"query {spec.name!r} shed: {self.max_workers} workers "
                    f"and all {self.max_queue} queue slots are busy"
                )
            )
            return future
        self._pool.submit(self._run, spec, params, key, future)
        return future

    def _run(self, spec: QuerySpec, params: dict, key, future: Future) -> None:
        """Worker-thread body: execute, record, cache, resolve."""
        metrics = self.metrics
        started = perf_ns()
        try:
            with trace_span("serve.execute", "serve") as sp:
                if sp is not None:
                    sp.add(query=spec.name)
                context = self._context()
                # The same per-entry-point span (with cache hit/miss
                # attributes) a study trace gets, so server-driven and
                # CLI-driven runs of one analysis look alike in a trace.
                with analysis_span(spec.name, context):
                    result = spec.run(self.store, context, params)
        except BaseException as exc:
            metrics.counter("errors").inc()
            if key is not None:
                self._inflight.finish(key)
            future.set_exception(exc)
        else:
            # One clock for both observability sinks: the histogram
            # sample is the same perf_ns delta a span would carry.
            elapsed_ns = perf_ns() - started
            metrics.counter("executions").inc()
            metrics.timer("query").record_ns(elapsed_ns)
            metrics.timer(f"query.{spec.name}").record_ns(elapsed_ns)
            if key is not None:
                # Cache before un-tracking: a request arriving in the
                # gap must see one of the two (see InFlightTable.finish).
                self.cache.put(key, result)
                self._inflight.finish(key)
            future.set_result(result)
        finally:
            self._slots.release()

    def refresh(self) -> int:
        """Re-warm cached foldable results after an append-only mutation.

        The generation is part of every cache key, so an append orphans
        all cached entries. For **foldable** queries the delta path
        (:meth:`RecordStore.append` on a warm context) already folded
        the new rows into the memoized analysis result — rerunning the
        query is a memo hit, not a recompute. This method reruns each
        foldable query that was cached at an earlier generation and
        caches the result under the current one, so followers of a
        tailed stream keep hitting the cache across appends. Returns
        the number of entries re-warmed; never raises (a failed rerun
        is counted under ``errors`` and skipped).

        Wired as the ``on_append`` callback of
        :func:`repro.stream.ingest.follow`.
        """
        generation = self.store.generation
        cached = self.cache.keys()
        current = {key for key in cached if key[2] == generation}
        warm: dict[str, tuple] = {}
        for key in cached:
            name, params_items, gen = key
            spec = self.registry.get(name)
            if spec is None or not spec.foldable or gen == generation:
                continue
            warm[name] = params_items  # latest generation wins (LRU order)
        refreshed = 0
        for name, params_items in warm.items():
            key = (name, params_items, generation)
            if key in current:
                continue
            spec = self.registry[name]
            try:
                with trace_span("serve.refresh", "serve") as sp:
                    if sp is not None:
                        sp.add(query=name, generation=generation)
                    result = spec.run(
                        self.store, self._context(), dict(params_items)
                    )
            except Exception:
                self.metrics.counter("errors").inc()
                continue
            self.cache.put(key, result)
            self.metrics.counter("refreshed").inc()
            refreshed += 1
        return refreshed

    def query(
        self,
        name: str,
        params: Mapping | None = None,
        *,
        timeout: float | None = -1.0,
    ) -> object:
        """Blocking request with a deadline (None waits forever)."""
        if timeout == -1.0:
            timeout = self.default_timeout
        future = self.submit(name, params)
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            self.metrics.counter("timeouts").inc()
            trace_event("serve.timeout", "serve", query=name)
            raise QueryTimeoutError(
                f"query {name!r} missed its {timeout:g}s deadline "
                "(the computation continues and will populate the cache)"
            ) from None

    def serialize(self, name: str, result) -> dict:
        """Wire form of a result (meta queries are already dicts)."""
        if name in _META_QUERIES:
            return {"kind": "meta", **result}
        return serialize_result(self.registry[name], result)

    # -- introspection -------------------------------------------------------
    def describe(self) -> dict:
        """The ``queries`` meta query: every name with title and policy."""
        entries = {
            name: {
                "title": spec.title,
                "kind": spec.kind,
                "params": list(spec.param_names),
                "cacheable": spec.cacheable,
                "foldable": spec.foldable,
                "mergeable": spec.mergeable,
            }
            for name, spec in self.registry.items()
        }
        for name in _META_QUERIES:
            entries[name] = {
                "title": f"service {name}", "kind": "meta", "params": [],
                "cacheable": False, "foldable": False, "mergeable": False,
            }
        return {"queries": entries}

    def stats(self) -> dict:
        """The ``stats`` meta query: counters, latency, hit rates."""
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        requests = counters.get("requests", 0)
        lookups = counters.get("cache_hits", 0) + counters.get("cache_misses", 0)

        def rate(n: int, d: int) -> float:
            return round(n / d, 4) if d else 0.0

        return {
            "store": {
                "platform": self.store.platform,
                "rows": len(self.store.files),
                "jobs": len(self.store.jobs),
                "generation": self.store.generation,
            },
            "pool": {
                "max_workers": self.max_workers,
                "max_queue": self.max_queue,
                "in_flight": len(self._inflight),
            },
            "cache": self.cache.info(),
            "counters": counters,
            "latency_ms": snap["latency"],
            "rates": {
                "cache_hit": rate(counters.get("cache_hits", 0), lookups),
                "coalesce": rate(counters.get("coalesced", 0), requests),
                "rejection": rate(counters.get("rejected", 0), requests),
            },
        }

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryEngine({self.store.platform!r}, "
            f"workers={self.max_workers}, queue={self.max_queue}, "
            f"cache={self.cache.max_entries})"
        )

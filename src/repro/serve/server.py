"""Newline-delimited-JSON socket front end for a QueryEngine.

Protocol (one JSON object per line, UTF-8):

request::

    {"id": 7, "query": "table3", "params": {}, "timeout": 5.0}

response::

    {"id": 7, "ok": true, "elapsed_ms": 12.3, "result": {...}}
    {"id": 7, "ok": false, "elapsed_ms": 0.1,
     "error": {"type": "ServiceOverloadError", "message": "..."}}

Each request becomes its own asyncio task, so one connection can
pipeline many concurrent queries — that is what makes server-side
coalescing observable from a single client. The asyncio loop only
shuttles bytes; all analysis work happens on the engine's worker pool,
and the engine's admission bound is the only queue in the system.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.errors import QueryTimeoutError, ReproError, ServeError
from repro.obs.clock import perf_ns
from repro.obs.tracer import get_tracer
from repro.serve.engine import QueryEngine

#: Default TCP port: 0x1e6a, "I/O" spelled just badly enough.
DEFAULT_PORT = 7786

#: Requests larger than this are protocol abuse, not queries.
MAX_LINE_BYTES = 1 << 20


def _error_payload(exc: BaseException) -> dict:
    return {"type": type(exc).__name__, "message": str(exc)}


def _elapsed_ms(started_ns: int) -> float:
    """Milliseconds since a ``perf_ns`` reading (the shared clock)."""
    return round((perf_ns() - started_ns) / 1e6, 3)


class AnalysisServer:
    """Serves one QueryEngine over TCP with NDJSON framing."""

    def __init__(
        self, engine: QueryEngine, host: str = "127.0.0.1", port: int = 0
    ):
        self.engine = engine
        self.host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=MAX_LINE_BYTES,
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self.engine.metrics.counter("connections").inc()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer, write_lock,
                        {"id": None, "ok": False, "error": _error_payload(
                            ServeError("request line exceeds 1 MiB"))},
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_request(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Client vanished mid-close, or the loop is tearing the
                # task down at server shutdown; either way we're done.
                pass

    async def _handle_request(self, line: bytes, writer, write_lock) -> None:
        started_ns = perf_ns()
        request_id = None
        query_name = None
        try:
            try:
                request = json.loads(line)
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(f"malformed request JSON: {exc}") from None
            if not isinstance(request, dict):
                raise ServeError("request must be a JSON object")
            request_id = request.get("id")
            name = request.get("query")
            if not isinstance(name, str):
                raise ServeError('request needs a string "query" field')
            query_name = name
            params = request.get("params") or {}
            if not isinstance(params, dict):
                raise ServeError('"params" must be a JSON object')
            timeout = request.get("timeout", self.engine.default_timeout)
            future = self.engine.submit(name, params)
            try:
                result = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout
                )
            except asyncio.TimeoutError:
                self.engine.metrics.counter("timeouts").inc()
                raise QueryTimeoutError(
                    f"query {name!r} missed its {timeout:g}s deadline"
                ) from None
            payload = {
                "id": request_id,
                "ok": True,
                "elapsed_ms": _elapsed_ms(started_ns),
                "result": self.engine.serialize(name, result),
            }
        except ReproError as exc:
            payload = {
                "id": request_id,
                "ok": False,
                "elapsed_ms": _elapsed_ms(started_ns),
                "error": _error_payload(exc),
            }
        except Exception as exc:
            # An analysis bug must become an error *response*, never a
            # silently-dead task — the client would hang to its socket
            # timeout waiting for a line that isn't coming.
            self.engine.metrics.counter("internal_errors").inc()
            payload = {
                "id": request_id,
                "ok": False,
                "elapsed_ms": _elapsed_ms(started_ns),
                "error": {
                    "type": "InternalError",
                    "message": f"{type(exc).__name__}: {exc}",
                },
            }
        tracer = get_tracer()
        if tracer is not None:
            # Recorded after the fact (not a stack span): the coroutine
            # interleaves with other requests on the loop thread, so
            # stack-discipline nesting would lie about parentage.
            tracer.record(
                "serve.request", "serve", started_ns, perf_ns() - started_ns,
                query=query_name, ok=payload["ok"],
            )
        await self._send(writer, write_lock, payload)

    async def _send(self, writer, write_lock, payload: dict) -> None:
        data = json.dumps(payload, ensure_ascii=True).encode() + b"\n"
        async with write_lock:  # responses must not interleave
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client disconnected before its answer arrived


def run_server(
    engine: QueryEngine, host: str = "127.0.0.1", port: int = DEFAULT_PORT
) -> None:  # pragma: no cover - exercised via BackgroundServer
    """Blocking entry point behind ``repro serve``."""

    async def main() -> None:
        server = AnalysisServer(engine, host, port)
        await server.start()
        print(f"repro serve: {engine!r} listening on {host}:{server.port}")
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """An AnalysisServer on a daemon thread (tests and benchmarks).

    ::

        with BackgroundServer(engine) as server:
            client = ServeClient(port=server.port)
    """

    def __init__(
        self, engine: QueryEngine, host: str = "127.0.0.1", port: int = 0
    ):
        self._server = AnalysisServer(engine, host, port)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Future | None = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-listener", daemon=True
        )
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    def _thread_main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = self._loop.create_future()
        try:
            await self._server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop
        finally:
            await self._server.aclose()

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._stop is not None:
            def finish() -> None:
                if not self._stop.done():
                    self._stop.set_result(None)

            self._loop.call_soon_threadsafe(finish)
        self._thread.join(timeout=10)

"""The named-query registry: one table mapping query names to analyses.

``repro analyze``, ``repro query``, and :class:`repro.serve.engine.QueryEngine`
all dispatch through :func:`default_registry`, so the CLI's exhibit list
and the service's query surface are the same object and cannot drift.

A :class:`QuerySpec` carries the runner (``(store, context, params) ->
result``), the rendering metadata (title + header key into
:data:`repro.analysis.report.HEADERS`), and the serving policy
(cacheability, accepted parameters). Runners return the same objects the
``analysis/`` entry points return — serialization to wire format happens
only at the socket boundary (:func:`serialize_result`), so in-process
callers can assert byte-identical results against direct calls.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.analysis import (
    bandwidth_variability,
    dataset_summary,
    file_classification,
    insystem_domain_usage,
    interface_transfer_cdfs,
    interface_usage,
    large_files,
    layer_exclusivity,
    layer_volumes,
    performance_by_bin,
    request_cdfs,
    stdio_domain_usage,
    temporal_profile,
    transfer_cdfs,
    tuning_report,
    user_activity,
)
from repro.analysis.report import HEADERS
from repro.errors import ServeError
from repro.platforms import get_platform


@dataclass(frozen=True)
class QuerySpec:
    """One named query: how to run it, render it, and serve it."""

    name: str
    title: str
    #: ``"table"`` (rows via ``to_rows()``), ``"shapes"`` (ShapeCheck
    #: list), ``"advice"`` (advisor dataclasses), or ``"meta"``
    #: (engine-level dict, e.g. ``stats``).
    kind: str
    #: Key into :data:`repro.analysis.report.HEADERS`; None when the
    #: result is not a table.
    header_key: str | None
    run: Callable[..., object]
    #: Parameter names accepted in a request's ``params`` object.
    param_names: tuple[str, ...] = ()
    #: Uncacheable queries (``stats``) recompute on every request and
    #: never coalesce.
    cacheable: bool = True
    #: Foldable queries have a registered result fold
    #: (:func:`repro.analysis.context.register_result_fold`): on an
    #: append-only store mutation their memoized result is updated in
    #: place, so :meth:`QueryEngine.refresh` can re-warm the result
    #: cache at the new generation with a cheap memo-hit rerun.
    foldable: bool = False
    #: Mergeable queries are pure functions of a store's tables, so the
    #: federation layer (:mod:`repro.federation`) may answer them across
    #: a catalog of stores — by exact member-wise reduction when the
    #: query only sums (see :data:`repro.federation.reduce.REDUCERS`),
    #: by a merged-store pass otherwise. What-if sweeps and advisors
    #: stay single-store: they model one platform's hardware.
    mergeable: bool = False

    @property
    def headers(self) -> list[str] | None:
        return HEADERS[self.header_key] if self.header_key else None


def validate_params(spec: QuerySpec, params: Mapping | None) -> dict:
    """Normalized, validated request parameters for a spec."""
    params = dict(params or {})
    unknown = sorted(set(params) - set(spec.param_names))
    if unknown:
        accepted = ", ".join(spec.param_names) or "none"
        raise ServeError(
            f"query {spec.name!r} got unknown parameter(s) "
            f"{', '.join(unknown)}; accepted: {accepted}"
        )
    for key, value in params.items():
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ServeError(
                f"query {spec.name!r} parameter {key!r} must be a JSON "
                f"scalar, got {type(value).__name__}"
            )
    return params


def _exhibit(fn, **fixed):
    """Runner for a parameterless exhibit entry point."""

    def run(store, ctx, params):
        return fn(store, context=ctx, **fixed)

    return run


def _run_shapes(store, ctx, params):
    # Imported here: core.compare consumes analysis results, and the
    # registry is imported by cli/engine before any store exists.
    from repro.core.compare import run_shape_checks
    from repro.core.study import compute_results

    return run_shape_checks(compute_results(store, context=ctx))


def _run_advise_staging(store, ctx, params):
    from repro.optimize import assess_staging

    return assess_staging(store, get_platform(store.platform))


def _run_advise_aggregation(store, ctx, params):
    from repro.optimize import find_aggregation_opportunities

    top = params.get("top")
    opportunities = find_aggregation_opportunities(
        store, get_platform(store.platform)
    )
    return opportunities[: int(top)] if top is not None else opportunities


def _whatif_runner(scenario_name):
    """Runner for one what-if scenario: a digital-twin sweep point.

    Cacheability does the heavy lifting here: the engine's result cache
    is keyed (query, sorted params, store generation), so a repeated
    sweep point on an unchanged store is a cache hit and any append
    invalidates every cached point.
    """

    def run(store, ctx, params):
        from repro.whatif import compute_point

        return compute_point(store, scenario_name, params)

    return run


def _whatif_specs() -> list[QuerySpec]:
    from repro.whatif import scenario_catalog

    return [
        QuerySpec(
            f"whatif_{name}",
            f"What-if - {scenario.title}",
            "table",
            "whatif",
            _whatif_runner(name),
            param_names=scenario.param_names,
        )
        for name, scenario in scenario_catalog().items()
    ]


def default_registry() -> dict[str, QuerySpec]:
    """Fresh name -> spec mapping for every built-in query."""
    specs = [
        QuerySpec("table2", "Table 2 - dataset summary", "table", "table2",
                  _exhibit(dataset_summary)),
        QuerySpec("table3", "Table 3 - files and volume per layer", "table",
                  "table3", _exhibit(layer_volumes), foldable=True),
        QuerySpec("table4", "Table 4 - >1TB files", "table", "table4",
                  _exhibit(large_files)),
        QuerySpec("table5", "Table 5 - job layer exclusivity", "table",
                  "table5", _exhibit(layer_exclusivity)),
        QuerySpec("table6", "Table 6 - interface usage", "table", "table6",
                  _exhibit(interface_usage), foldable=True),
        QuerySpec("fig3", "Figure 3 - transfer-size CDFs", "table", "fig3",
                  _exhibit(transfer_cdfs)),
        QuerySpec("fig4", "Figure 4 - request-size CDFs", "table", "fig4",
                  _exhibit(request_cdfs), foldable=True),
        QuerySpec("fig5", "Figure 5 - request-size CDFs (large jobs)",
                  "table", "fig4",
                  _exhibit(request_cdfs, large_jobs_only=True),
                  foldable=True),
        QuerySpec("fig6", "Figure 6 - file classification", "table", "fig6",
                  _exhibit(file_classification), foldable=True),
        QuerySpec("fig7", "Figure 7 - in-system domains", "table", "fig7",
                  _exhibit(insystem_domain_usage)),
        QuerySpec("fig8", "Figure 8 - STDIO classification", "table", "fig6",
                  _exhibit(file_classification, stdio_only=True),
                  foldable=True),
        QuerySpec("fig9", "Figure 9 - interface transfer CDFs", "table",
                  "fig9", _exhibit(interface_transfer_cdfs)),
        QuerySpec("fig10", "Figure 10 - STDIO domains", "table", "fig7",
                  _exhibit(stdio_domain_usage)),
        QuerySpec("fig11", "Figures 11/12 - POSIX vs STDIO bandwidth",
                  "table", "fig11", _exhibit(performance_by_bin)),
        QuerySpec("users", "User concentration (Lim et al. style)", "table",
                  "users", _exhibit(user_activity)),
        QuerySpec("temporal", "Temporal structure (Patel et al. style)",
                  "table", "temporal", _exhibit(temporal_profile)),
        QuerySpec("variability", "Bandwidth variability (TOKIO style)",
                  "table", "variability", _exhibit(bandwidth_variability)),
        QuerySpec("tuning", "User tuning trajectories (§5 future work)",
                  "table", "tuning", _exhibit(tuning_report)),
        QuerySpec("shapes", "Paper-vs-measured shape checks", "shapes", None,
                  _run_shapes),
        QuerySpec("advise_staging", "Staging advisor (burst-buffer offload)",
                  "advice", None, _run_advise_staging),
        QuerySpec("advise_aggregation",
                  "Aggregation advisor (request coalescing gains)", "advice",
                  None, _run_advise_aggregation, param_names=("top",)),
        *_whatif_specs(),
    ]
    # Every tabular exhibit is a pure function of the store tables and
    # thus federable across a catalog; what-if sweeps are not (they
    # model one platform's hardware parameters, not the fleet's union).
    specs = [
        dataclasses.replace(spec, mergeable=True)
        if spec.kind == "table" and not spec.name.startswith("whatif_")
        else spec
        for spec in specs
    ]
    return {spec.name: spec for spec in specs}


def exhibit_names(registry: Mapping[str, QuerySpec] | None = None) -> list[str]:
    """Names servable by ``repro analyze`` (tabular exhibits)."""
    registry = registry if registry is not None else default_registry()
    return sorted(n for n, s in registry.items() if s.kind == "table")


def listing_payload(listing: str, items: list[dict]) -> dict:
    """The one JSON shape every CLI ``--list --json`` emits.

    ``repro analyze --list``, ``repro whatif --list``, and ``repro
    generate --list-specs`` all wrap their entries in this envelope —
    ``{"kind": "listing", "listing": <surface>, "items": [...]}`` with
    each item carrying at least ``name`` and ``title`` — so scripted
    consumers parse one shape regardless of which surface they asked.
    """
    for item in items:
        missing = {"name", "title"} - set(item)
        if missing:  # pragma: no cover - listing builders are internal
            raise ServeError(
                f"listing item missing keys {sorted(missing)}: {item!r}"
            )
    return {"kind": "listing", "listing": listing, "items": _jsonable(items)}


# -- wire serialization ------------------------------------------------------
def _jsonable(value):
    """Recursively coerce numpy scalars / non-finite floats for JSON."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf' / 'nan' — JSON has no literals for these
    return value


def serialize_result(spec: QuerySpec, result) -> dict:
    """JSON-safe wire form of a runner's result."""
    if isinstance(result, dict) and "kind" in result:
        # Already wire form: a federated runner routed the query to a
        # remote member, whose server serialized it on its side.
        return result
    if spec.kind == "table":
        items = result if isinstance(result, (list, tuple)) else [result]
        rows: list[list[str]] = []
        for item in items:
            rows.extend(item.to_rows())
        return {
            "kind": "table",
            "title": spec.title,
            "headers": spec.headers,
            "rows": _jsonable(rows),
        }
    if spec.kind == "shapes":
        checks = [dataclasses.asdict(c) for c in result]
        return {
            "kind": "shapes",
            "title": spec.title,
            "checks": _jsonable(checks),
            "passed": sum(c.passed for c in result),
            "failed": sum(not c.passed for c in result),
        }
    if spec.kind == "advice":
        items = result if isinstance(result, (list, tuple)) else [result]
        derived = ("speedup", "saved_seconds", "in_job_speedup", "worthwhile")
        payload = []
        for item in items:
            entry = dataclasses.asdict(item)
            entry.update(
                {k: getattr(item, k) for k in derived if hasattr(item, k)}
            )
            payload.append(_jsonable(entry))
        return {"kind": "advice", "title": spec.title, "items": payload}
    if spec.kind == "meta":
        return {"kind": "meta", "title": spec.title, **_jsonable(result)}
    raise ServeError(f"unknown result kind {spec.kind!r}")  # pragma: no cover

"""Paper-vs-measured shape checks.

A *shape check* asserts the qualitative conclusion a paper exhibit
supports — who dominates, by roughly what factor, where the crossover
falls — with tolerances wide enough to absorb synthetic-population noise
but tight enough that a miscalibrated generator or a broken analysis
fails. The EXPERIMENTS.md table is generated from these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.performance import panel
from repro.core import expectations as exp
from repro.core.study import StudyResults


@dataclass(frozen=True)
class ShapeCheck:
    name: str
    passed: bool
    expected: str
    measured: str
    #: Which paper exhibit this check validates.
    exhibit: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.exhibit:9s} {self.name}: "
            f"expected {self.expected}, measured {self.measured}"
        )


def _check(name, exhibit, passed, expected, measured) -> ShapeCheck:
    return ShapeCheck(
        name=name,
        exhibit=exhibit,
        passed=bool(passed),
        expected=str(expected),
        measured=str(measured),
    )


def _ratio_in(value: float, lo: float, hi: float) -> bool:
    return math.isfinite(value) and lo <= value <= hi


def _pooled_speedup(panel_obj, bins) -> float:
    """n-weighted POSIX/STDIO median ratio pooled over bins.

    Single-bin medians jump around with a handful of shared files; pooling
    neighbouring bins (weighted by the smaller interface's sample count)
    stabilizes the ratio without hiding the direction.
    """
    num = den = nw = 0.0
    for b in bins:
        i = panel_obj.bin_labels.index(b)
        posix = panel_obj.boxes["POSIX"][i]
        stdio = panel_obj.boxes["STDIO"][i]
        if posix.n and stdio.n and stdio.median > 0:
            w = min(posix.n, stdio.n)
            num += w * posix.median
            den += w * stdio.median
            nw += w
    return num / den if nw else float("nan")


# ---------------------------------------------------------------------------


def _common_checks(r: StudyResults) -> list[ShapeCheck]:
    p = r.platform
    out = []

    # Table 3: layer popularity.
    t3 = r.table3
    paper_ratio = exp.PFS_OVER_INSYSTEM_FILES[p]
    measured = t3.pfs_over_insystem_files()
    out.append(
        _check(
            "PFS holds far more files than the in-system layer",
            "Table 3",
            # The in-system file count rides on a handful of pipeline
            # jobs at small scales; accept half an order of magnitude.
            _ratio_in(measured, paper_ratio / 3.5, paper_ratio * 5.5),
            f"~{paper_ratio:.1f}x",
            f"{measured:.2f}x",
        )
    )

    # Table 3: read/write dominance per layer.
    for layer, row in (("insystem", t3.insystem), ("pfs", t3.pfs)):
        paper_rw = exp.READ_OVER_WRITE[(p, layer)]
        measured_rw = row.read_write_ratio()
        read_dominated = paper_rw > 1
        ok = (
            measured_rw > 1.2 if read_dominated else measured_rw < 0.5
        ) and _ratio_in(measured_rw, paper_rw / 4, paper_rw * 4)
        out.append(
            _check(
                f"{layer} {'read' if read_dominated else 'write'}-dominance",
                "Table 3",
                ok,
                f"R/W ~{paper_rw:.3f}",
                f"R/W {measured_rw:.3f}",
            )
        )

    # Figure 3: small transfers dominate.
    for cdf in r.fig3:
        key = (p, cdf.layer, cdf.direction)
        paper_frac = exp.SUB_1GB_FILE_FRACTION[key]
        measured_frac = cdf.percent_below(1e9) / 100.0
        out.append(
            _check(
                f"{cdf.layer} {cdf.direction}: files below 1 GB",
                "Figure 3",
                measured_frac >= paper_frac - 0.04,
                f">= {100 * paper_frac:.1f}%",
                f"{100 * measured_frac:.1f}%",
            )
        )

    # Figure 6 / Recommendation 3: stageable PFS files.
    stageable = r.fig6.stageable_pfs_fraction()
    paper_stageable = exp.STAGEABLE_PFS_FRACTION[p]
    out.append(
        _check(
            "PFS files are overwhelmingly read-only or write-only",
            "Figure 6",
            stageable >= paper_stageable - 0.07,
            f"~{100 * paper_stageable:.1f}%",
            f"{100 * stageable:.1f}%",
        )
    )

    # Table 6: STDIO share of interface usage.
    share = r.table6.stdio_share()
    paper_share = exp.STDIO_OVERALL_SHARE[p]
    out.append(
        _check(
            "overall STDIO share of files",
            "Table 6",
            _ratio_in(share, paper_share * 0.6, paper_share * 1.6),
            f"~{100 * paper_share:.0f}%",
            f"{100 * share:.1f}%",
        )
    )

    # Figures 11/12: POSIX beats STDIO on PFS reads, gap grows with size.
    # Bins can be empty at small scale (the paper notes missing boxes
    # too), so pool neighbouring bins before judging.
    perf = panel(r.fig11_12, "pfs", "read")
    small = _pooled_speedup(perf, ["100M_1G", "1G_10G"])
    big = _pooled_speedup(perf, ["10G_100G", "100G_1T"])
    out.append(
        _check(
            "PFS reads: POSIX median beats STDIO",
            "Fig 11/12",
            small > 1.5,
            "> 1.5x",
            f"{small:.2f}x",
        )
    )
    if math.isfinite(big) and math.isfinite(small):
        out.append(
            _check(
                "PFS reads: POSIX advantage grows with transfer size",
                "Fig 11/12",
                # Bin medians are noisy; accept either a monotone trend or
                # an unambiguously large top-bin gap (the paper's is ~40x
                # from a year of data; ours pools far fewer shared files).
                big > 0.7 * small or big > 3.5,
                f">~ {small:.2f}x (or > 3.5x outright)",
                f"{big:.2f}x",
            )
        )
    wperf = panel(r.fig11_12, "pfs", "write")
    wratio = _pooled_speedup(wperf, ["100M_1G", "1G_10G"])
    out.append(
        _check(
            "PFS writes: POSIX ahead but by less than reads",
            "Fig 11/12",
            math.isfinite(wratio) and 1.0 < wratio < small * 2,
            "read gap > write gap > 1",
            f"{wratio:.2f}x (read {small:.2f}x)",
        )
    )
    return out


def _summit_checks(r: StudyResults) -> list[ShapeCheck]:
    out = []

    # Table 5: essentially no SCNL-exclusive jobs, few jobs touch SCNL.
    t5 = r.table5
    out.append(
        _check(
            "SCNL-exclusive jobs are (almost) nonexistent",
            "Table 5",
            t5.insystem_only_fraction() < 0.01,
            "~0%",
            f"{100 * t5.insystem_only_fraction():.2f}%",
        )
    )
    both_frac = t5.both / t5.total if t5.total else float("nan")
    out.append(
        _check(
            "only ~1-2% of jobs touch SCNL at all",
            "Table 5",
            both_frac < 0.05,
            "~1.4%",
            f"{100 * both_frac:.2f}%",
        )
    )

    # Table 6: STDIO dominates SCNL.
    ratio = r.table6.stdio_over_posix("insystem")
    out.append(
        _check(
            "STDIO over POSIX on SCNL",
            "Table 6",
            ratio > 2.0,
            f"~{exp.SUMMIT_SCNL_STDIO_OVER_POSIX}x",
            f"{ratio:.2f}x",
        )
    )

    # Table 4: >1TB files only on the PFS. The PFS population itself is
    # a few-thousand-per-year tail (Poisson-sparse at small scales), so
    # the hard requirement is SCNL's emptiness; PFS presence is required
    # only when the sample produced any >1TB files at all.
    t4 = r.table4
    ins_r, ins_w = t4.counts["insystem"]
    pfs_r, pfs_w = t4.counts["pfs"]
    total = ins_r + ins_w + pfs_r + pfs_w
    out.append(
        _check(
            ">1TB files never appear on SCNL",
            "Table 4",
            ins_r == 0 and ins_w == 0 and (total == 0 or pfs_r + pfs_w > 0),
            "SCNL 0/0 (PFS carries any giants)",
            f"SCNL {ins_r}/{ins_w}, PFS {pfs_r}/{pfs_w}",
        )
    )

    # Figure 4: SCNL request concentration in 10K-100K.
    for cdf in r.fig4:
        if cdf.layer != "insystem":
            continue
        share = cdf.percent_in_bin("10K_100K") / 100.0
        paper = (
            exp.SUMMIT_SCNL_10K_100K_READ
            if cdf.direction == "read"
            else exp.SUMMIT_SCNL_10K_100K_WRITE
        )
        out.append(
            _check(
                f"SCNL {cdf.direction} calls concentrate in 10K-100K",
                "Figure 4",
                share > paper - 0.15,
                f"~{100 * paper:.0f}%",
                f"{100 * share:.1f}%",
            )
        )

    # Figure 11: SCNL writes — STDIO competitive or better around 1 GB.
    # Like the paper ("some of the boxplots are missing because of the
    # absence of files in that size range"), skip when both bins are
    # empty; pool them otherwise.
    sperf = panel(r.fig11_12, "insystem", "write")
    ratio = _pooled_speedup(sperf, ["100M_1G"])
    if math.isfinite(ratio):
        out.append(
            _check(
                "SCNL writes 100MB-1GB: STDIO at least matches POSIX",
                "Figure 11",
                ratio < 1.2,
                "STDIO ~1.5x faster",
                f"POSIX/STDIO {ratio:.2f}x",
            )
        )

    # Figure 7a: CS + physics cover most SCNL jobs. Only ~1.2% of jobs
    # touch SCNL, so the share is meaningful only once a few dozen SCNL
    # jobs exist — smaller populations get the check skipped, like the
    # paper's own caveats about sparse populations.
    if r.fig7.jobs_total >= 30:
        share = r.fig7.job_share("computer science", "physics")
        out.append(
            _check(
                "computer science + physics dominate SCNL jobs",
                "Figure 7a",
                share > 0.40,
                f"~{100 * exp.SUMMIT_SCNL_CS_PHYSICS_JOB_SHARE:.0f}% of jobs",
                f"{100 * share:.1f}% of jobs",
            )
        )
    return out


def _cori_checks(r: StudyResults) -> list[ShapeCheck]:
    out = []

    # Table 5: CBB-exclusive jobs.
    frac = r.table5.insystem_only_fraction()
    out.append(
        _check(
            "CBB-exclusive job fraction",
            "Table 5",
            _ratio_in(frac, 0.09, 0.22),
            f"{100 * exp.CORI_CBB_ONLY_FRACTION:.2f}%",
            f"{100 * frac:.2f}%",
        )
    )

    # Table 6: MPI-IO is strong on Cori.
    t6 = r.table6.counts
    mp_ratio = t6["pfs"]["MPI-IO"] / max(t6["pfs"]["POSIX"], 1)
    out.append(
        _check(
            "MPI-IO claims a large share of PFS files",
            "Table 6",
            mp_ratio > 0.4,
            "~0.66 (207M/313M)",
            f"{mp_ratio:.2f}",
        )
    )
    cbb_mp = t6["insystem"]["MPI-IO"] / max(t6["insystem"]["POSIX"], 1)
    out.append(
        _check(
            "nearly all CBB POSIX traffic is MPI-IO underneath",
            "Table 6",
            cbb_mp > 0.8,
            "~1.0 (13M/13M)",
            f"{cbb_mp:.2f}",
        )
    )

    # Table 4: big writes on PFS, big reads from CBB. Counts are tiny at
    # small scale, so only judge when enough mass exists.
    t4 = r.table4
    total_w = t4.counts["pfs"][1] + t4.counts["insystem"][1]
    total_r = t4.counts["pfs"][0] + t4.counts["insystem"][0]
    if total_w >= 5:
        out.append(
            _check(
                ">1TB writes land on the PFS",
                "Table 4",
                t4.pfs_write_share() > 0.7,
                f"{100 * exp.CORI_PFS_WRITE_SHARE:.1f}%",
                f"{100 * t4.pfs_write_share():.1f}%",
            )
        )
    if total_r >= 5:
        out.append(
            _check(
                ">1TB reads come from CBB",
                "Table 4",
                t4.insystem_read_share() > 0.5,
                f"{100 * exp.CORI_CBB_READ_SHARE:.1f}%",
                f"{100 * t4.insystem_read_share():.1f}%",
            )
        )

    # Figure 7b: physics dominates CBB transfer.
    # Per-domain *volume* is dominated by a handful of tail files at
    # small scales, so the robust assertion combines the job-count axis
    # (stable under stratified domain assignment) with a volume floor.
    physics_jobs = r.fig7.job_share("physics")
    other_top_jobs = max(
        (
            r.fig7.jobs_by_domain.get(d, 0)
            for d in r.fig7.jobs_by_domain
            if d and d != "physics"
        ),
        default=0,
    ) / max(r.fig7.jobs_total, 1)
    out.append(
        _check(
            "physics dominates CBB usage",
            "Figure 7b",
            physics_jobs >= other_top_jobs
            and r.fig7.domain_share("physics") > 0.10,
            "physics (71.95% of transfer)",
            f"physics: {100 * physics_jobs:.0f}% of CBB jobs, "
            f"{100 * r.fig7.domain_share('physics'):.0f}% of transfer",
        )
    )

    # Figure 10: domain coverage of STDIO jobs.
    cov = r.fig10.domain_coverage()
    out.append(
        _check(
            "STDIO jobs with a known domain",
            "Figure 10",
            _ratio_in(cov, 0.84, 0.96),
            f"{100 * exp.CORI_STDIO_DOMAIN_COVERAGE:.2f}%",
            f"{100 * cov:.2f}%",
        )
    )
    return out


def run_shape_checks(results: StudyResults) -> list[ShapeCheck]:
    """All shape checks for one platform's results."""
    checks = _common_checks(results)
    if results.platform == "summit":
        checks += _summit_checks(results)
    else:
        checks += _cori_checks(results)
    return checks

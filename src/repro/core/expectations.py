"""The paper's published numbers, verbatim, as calibration/check targets.

Everything here is transcribed from the HPDC '22 paper; the shape checks
(:mod:`repro.core.compare`) and EXPERIMENTS.md compare the synthetic
study's output against these. Counts are full-year; volumes in bytes.
"""

from __future__ import annotations

from repro.units import PB, TB

# --------------------------------------------------------------------- Table 2
TABLE2 = {
    "summit": {
        "year": 2020,
        "darshan_version": "3.1.7",
        "logs": 7.74e6,
        "jobs": 281.6e3,
        "files": 1294.85e6,
        "node_hours": 16.4e6,
        "logs_per_job_max": 34_341,
    },
    "cori": {
        "year": 2019,
        "darshan_version": "3.0/3.1",
        "logs": 4.36e6,
        "jobs": 749.5e3,
        "files": 416.91e6,
        "node_hours": 45.5e6,
        "logs_per_job_max": 9_999,
    },
}

# --------------------------------------------------------------------- Table 3
#: {platform: {layer: (files, bytes_read, bytes_written)}}
TABLE3 = {
    "summit": {
        "insystem": (279.39e6, 4.43 * PB, 2.69 * PB),
        "pfs": (1015.46e6, 197.75 * PB, 8278.05 * PB),
    },
    "cori": {
        "insystem": (13.96e6, 13.71 * PB, 4.34 * PB),
        "pfs": (402.95e6, 171.64 * PB, 26.10 * PB),
    },
}

#: Derived headline ratios quoted in §3.2.1.
PFS_OVER_INSYSTEM_FILES = {"summit": 3.63, "cori": 28.87}
READ_OVER_WRITE = {
    ("summit", "insystem"): 4.43 / 2.69,     # ~1.65, read-leaning
    ("summit", "pfs"): 197.75 / 8278.05,     # ~0.024, write-dominated
    ("cori", "insystem"): 3.16,
    ("cori", "pfs"): 6.58,
}

# --------------------------------------------------------------------- Table 4
#: {platform: {layer: (>1TB read files, >1TB write files)}}
TABLE4 = {
    "summit": {"insystem": (0, 0), "pfs": (7232, 78)},
    "cori": {"insystem": (513, 950), "pfs": (74, 10_045)},
}
TABLE4_THRESHOLD = 1 * TB
#: Cori's quoted shares: 91.35% of >1TB writes on PFS; 87.39% of >1TB
#: reads from CBB.
CORI_PFS_WRITE_SHARE = 0.9135
CORI_CBB_READ_SHARE = 0.8739

# --------------------------------------------------------------------- Table 5
#: {platform: (in-system only, both, PFS only)} in jobs.
TABLE5 = {
    "summit": (0, 3.42e3, 241.5e3),
    "cori": (103.46e3, 35.9e3, 579.91e3),
}
CORI_CBB_ONLY_FRACTION = 0.1438

# --------------------------------------------------------------------- Table 6
#: {platform: {layer: (POSIX, MPI-IO, STDIO)}} in files (usage counts).
TABLE6 = {
    "summit": {
        "insystem": (52e6, 6, 227e6),
        "pfs": (743e6, 157e6, 404e6),
    },
    "cori": {
        "insystem": (13e6, 13e6, 0.65e6),
        "pfs": (313e6, 207e6, 89e6),
    },
}
STDIO_OVERALL_SHARE = {"summit": 0.398, "cori": 0.142}
SUMMIT_SCNL_STDIO_OVER_POSIX = 4.37

# ------------------------------------------------------------------ Figure 3/9
#: Quoted CDF points: {(platform, layer, direction): fraction below 1 GB}.
SUB_1GB_FILE_FRACTION = {
    ("summit", "pfs", "read"): 0.97,
    ("summit", "pfs", "write"): 0.99,
    ("summit", "insystem", "read"): 0.99,
    ("summit", "insystem", "write"): 0.99,
    ("cori", "insystem", "read"): 0.9904,
    ("cori", "insystem", "write"): 0.9777,
    ("cori", "pfs", "read"): 0.9905,
    ("cori", "pfs", "write"): 0.9091,
}

# ------------------------------------------------------------------- Figure 4
#: Quoted request-size concentrations (§3.2.1).
SUMMIT_PFS_READ_TINY_BINS = ("0_100", "1K_10K")   # ~45% of calls each
SUMMIT_SCNL_10K_100K_READ = 0.83
SUMMIT_SCNL_10K_100K_WRITE = 0.60

# ------------------------------------------------------------------- Figure 6
#: RO+WO (stageable) share of PFS files.
STAGEABLE_PFS_FRACTION = {"summit": 0.957, "cori": 0.901}

# ------------------------------------------------------------------- Figure 7
#: Figure 7b: physics carries 71.95% of CBB data transfer.
CORI_CBB_PHYSICS_SHARE = 0.7195
#: Figure 7a: computer science + physics cover ~60% of SCNL jobs.
SUMMIT_SCNL_CS_PHYSICS_JOB_SHARE = 0.60

# ------------------------------------------------------------------ Figure 10
#: 90.02% of Cori STDIO jobs had a domain attached.
CORI_STDIO_DOMAIN_COVERAGE = 0.9002

# --------------------------------------------------------------- Figures 11/12
#: Quoted median POSIX-over-STDIO speedups; (platform, layer, direction,
#: transfer bin label) -> ratio. Values > 1 mean POSIX wins.
PERF_SPEEDUPS = {
    ("summit", "pfs", "read", "100G_1T"): 40.0,
    ("summit", "pfs", "read", "small"): 3.0,     # < 100 GB
    ("summit", "insystem", "read", "100M_1G"): 5.0,
    ("summit", "insystem", "read", "10G_100G"): 8.0,
    ("summit", "pfs", "write", "100M_1G"): 1.6,
    ("summit", "insystem", "write", "100M_1G"): 1 / 1.5,  # STDIO wins
    ("cori", "pfs", "read", "1G_10G"): 6.78,
    ("cori", "pfs", "read", "10G_100G"): 2.9,
    ("cori", "pfs", "write", "100M_1G"): 3.67,
    ("cori", "pfs", "write", "1G_10G"): 2.02,
}

"""The end-to-end study pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import (
    dataset_summary,
    file_classification,
    insystem_domain_usage,
    interface_transfer_cdfs,
    interface_usage,
    large_files,
    layer_exclusivity,
    layer_volumes,
    performance_by_bin,
    request_cdfs,
    stdio_domain_usage,
    transfer_cdfs,
)
from repro.analysis.report import HEADERS, render_results
from repro.core.config import StudyConfig
from repro.obs.integrate import analysis_span
from repro.store.recordstore import RecordStore
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


@dataclass
class StudyResults:
    """All analyses for one platform, keyed like the paper's exhibits."""

    platform: str
    table2: object = None
    table3: object = None
    table4: object = None
    table5: object = None
    table6: object = None
    fig3: list = field(default_factory=list)
    fig4: list = field(default_factory=list)
    fig5: list = field(default_factory=list)
    fig6: object = None
    fig7: object = None
    fig8: object = None
    fig9: list = field(default_factory=list)
    fig10: object = None
    fig11_12: list = field(default_factory=list)


def compute_results(store: RecordStore, *, context=None) -> StudyResults:
    """Run every table/figure analysis over one store.

    The single exhibit pipeline behind both :meth:`CharacterizationStudy.run`
    and the ``shapes`` query of :mod:`repro.serve` — one shared analysis
    plan, so every exhibit reuses the same masks/index arrays instead of
    rescanning the file table.
    """
    ctx = context if context is not None else store.analysis()
    results = StudyResults(platform=store.platform)
    # Each entry point runs inside an analysis span annotated with the
    # shared context's memo hit/miss deltas, so a trace of a study shows
    # which exhibit paid for which masks and which rode the cache.
    plan = (
        ("table2", dataset_summary, {}),
        ("table3", layer_volumes, {}),
        ("table4", large_files, {}),
        ("table5", layer_exclusivity, {}),
        ("table6", interface_usage, {}),
        ("fig3", transfer_cdfs, {}),
        ("fig4", request_cdfs, {}),
        ("fig5", request_cdfs, {"large_jobs_only": True}),
        ("fig6", file_classification, {}),
        ("fig7", insystem_domain_usage, {}),
        ("fig8", file_classification, {"stdio_only": True}),
        ("fig9", interface_transfer_cdfs, {}),
        ("fig10", stdio_domain_usage, {}),
        ("fig11_12", performance_by_bin, {}),
    )
    for name, entry_point, kwargs in plan:
        with analysis_span(name, ctx):
            setattr(results, name, entry_point(store, context=ctx, **kwargs))
    return results


class CharacterizationStudy:
    """Generates each platform's synthetic year and runs every analysis."""

    def __init__(self, config: StudyConfig | None = None):
        self.config = config or StudyConfig()
        self._stores: dict[str, RecordStore] = {}
        self._results: dict[str, StudyResults] = {}

    # ------------------------------------------------------------------
    def store(self, platform: str) -> RecordStore:
        """The platform's synthetic year (generated once, then cached)."""
        key = platform.lower()
        if key not in self.config.platforms:
            raise ValueError(
                f"{platform!r} not in configured platforms {self.config.platforms}"
            )
        if key not in self._stores:
            gen = WorkloadGenerator(key, self.config.generator_config())
            self._stores[key] = generate_with_shadows(
                gen, self.config.seed, jobs=self.config.jobs
            )
        return self._stores[key]

    def run(self, platform: str) -> StudyResults:
        """Run every table/figure analysis for one platform (cached)."""
        key = platform.lower()
        if key in self._results:
            return self._results[key]
        store = self.store(key)
        results = compute_results(store)
        results.platform = key
        self._results[key] = results
        return results

    def run_all(self) -> dict[str, StudyResults]:
        return {p: self.run(p) for p in self.config.platforms}

    # ------------------------------------------------------------------
    def shape_checks(self, platform: str):
        """Paper-vs-measured shape checks for one platform."""
        from repro.core.compare import run_shape_checks

        return run_shape_checks(self.run(platform))

    def render(self, platform: str) -> str:
        """Full ASCII report for one platform."""
        r = self.run(platform)
        perf_fig = "Figure 11" if r.platform == "summit" else "Figure 12"
        sections = [
            render_results("Table 2 - dataset summary (full-year extrapolation)",
                           HEADERS["table2"], r.table2),
            render_results("Table 3 - files and transfer volume per layer",
                           HEADERS["table3"], r.table3),
            render_results("Table 4 - files with >1TB transfer",
                           HEADERS["table4"], r.table4),
            render_results("Table 5 - job layer exclusivity",
                           HEADERS["table5"], r.table5),
            render_results("Table 6 - interface usage per layer",
                           HEADERS["table6"], r.table6),
            render_results("Figure 3 - per-file transfer-size CDFs",
                           HEADERS["fig3"], r.fig3),
            render_results("Figure 4 - request-size CDFs (cumulative % of calls)",
                           HEADERS["fig4"], r.fig4),
            render_results("Figure 5 - request-size CDFs, jobs >1024 procs",
                           HEADERS["fig4"], r.fig5),
            render_results("Figure 6 - RO/RW/WO classification (POSIX+STDIO)",
                           HEADERS["fig6"], r.fig6),
            render_results("Figure 7 - in-system usage by domain",
                           HEADERS["fig7"], r.fig7),
            render_results("Figure 8 - RO/RW/WO classification (STDIO only)",
                           HEADERS["fig6"], r.fig8),
            render_results("Figure 9 - transfer CDFs per interface",
                           HEADERS["fig9"], r.fig9),
            render_results("Figure 10 - STDIO transfer by domain",
                           HEADERS["fig7"], r.fig10),
            render_results(f"{perf_fig} - POSIX vs STDIO bandwidth by bin",
                           HEADERS["fig11"], r.fig11_12),
        ]
        return "\n\n".join(sections)

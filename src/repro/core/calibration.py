"""Calibration report: generator output vs. the paper's published numbers.

The workload mixes (:mod:`repro.workloads.mixes`) were tuned against the
paper's Tables 2–6; this module makes that tuning auditable. It computes
every calibrated marginal from a store, pairs it with the published
target, and reports the ratio — the table EXPERIMENTS.md quotes, and the
regression net that catches an accidental de-calibration when someone
edits an archetype.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import (
    dataset_summary,
    interface_usage,
    layer_volumes,
)
from repro.core import expectations as exp
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class CalibrationRow:
    """One calibrated marginal: target vs measured."""

    quantity: str
    target: float
    measured: float

    @property
    def ratio(self) -> float:
        return self.measured / self.target if self.target else float("inf")

    def within(self, factor: float) -> bool:
        return self.target > 0 and 1 / factor <= self.ratio <= factor

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.quantity,
                f"{self.target:.4g}",
                f"{self.measured:.4g}",
                f"{self.ratio:.2f}x",
            ]
        ]


def calibration_report(store: RecordStore) -> list[CalibrationRow]:
    """All calibrated marginals for one platform's store (full-year)."""
    p = store.platform
    rows: list[CalibrationRow] = []

    t2 = dataset_summary(store)
    paper2 = exp.TABLE2[p]
    rows.append(CalibrationRow("jobs", paper2["jobs"], t2.jobs_scaled))
    rows.append(CalibrationRow("darshan logs", paper2["logs"], t2.logs_scaled))
    rows.append(CalibrationRow("files", paper2["files"], t2.files_scaled))
    rows.append(
        CalibrationRow("node-hours", paper2["node_hours"], t2.node_hours_scaled)
    )

    t3 = layer_volumes(store)
    for layer, row in (("insystem", t3.insystem), ("pfs", t3.pfs)):
        files_t, read_t, write_t = exp.TABLE3[p][layer]
        rows.append(
            CalibrationRow(f"{layer} files", files_t, row.files / store.scale)
        )
        rows.append(
            CalibrationRow(
                f"{layer} bytes read", read_t, row.bytes_read / store.scale
            )
        )
        rows.append(
            CalibrationRow(
                f"{layer} bytes written", write_t, row.bytes_written / store.scale
            )
        )
        rows.append(
            CalibrationRow(
                f"{layer} R/W ratio",
                exp.READ_OVER_WRITE[(p, layer)],
                row.read_write_ratio(),
            )
        )

    t6 = interface_usage(store)
    for layer in ("insystem", "pfs"):
        posix_t, mpiio_t, stdio_t = exp.TABLE6[p][layer]
        per = t6.counts[layer]
        for iface, target in (
            ("POSIX", posix_t), ("MPI-IO", mpiio_t), ("STDIO", stdio_t)
        ):
            if target < 1e6:
                continue  # sub-million targets are noise at bench scales
            rows.append(
                CalibrationRow(
                    f"{layer} {iface} files", target, per[iface] / store.scale
                )
            )
    rows.append(
        CalibrationRow(
            "STDIO overall share", exp.STDIO_OVERALL_SHARE[p], t6.stdio_share()
        )
    )
    return rows


def miscalibrated(
    rows: list[CalibrationRow], *, factor: float = 3.0
) -> list[CalibrationRow]:
    """Rows whose measured value strays beyond ``factor`` of the target."""
    return [r for r in rows if not r.within(factor)]

"""Study configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.generator import GeneratorConfig


@dataclass(frozen=True)
class StudyConfig:
    """Configuration for a full characterization study.

    ``scale`` is the fraction of the real yearly job count to synthesize
    (DESIGN.md §5): counts extrapolate linearly; distributions, ratios,
    and performance contrasts are scale-free. The defaults generate
    ~500K-1M file records per platform in a few seconds.
    """

    seed: int = 20220627  # HPDC '22 opened June 27, 2022
    scale: float = 1e-3
    platforms: tuple[str, ...] = ("summit", "cori")
    #: Worker processes for sharded generation (1 = serial, 0 = all cores).
    #: Any value yields the byte-identical store (DESIGN.md §8).
    jobs: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")
        if self.jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {self.jobs}")
        if not self.platforms:
            raise ConfigurationError("at least one platform required")
        for p in self.platforms:
            if p not in ("summit", "cori"):
                raise ConfigurationError(f"unknown platform {p!r}")

    def generator_config(self) -> GeneratorConfig:
        return GeneratorConfig(scale=self.scale)

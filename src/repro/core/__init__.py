"""Public study API.

Typical use::

    from repro.core import CharacterizationStudy, StudyConfig

    study = CharacterizationStudy(StudyConfig(seed=7, scale=1e-3))
    results = study.run("summit")
    print(study.render("summit"))
    checks = study.shape_checks("summit")

:class:`CharacterizationStudy` generates (and caches) each platform's
synthetic year, runs every table/figure analysis, and compares the shapes
against the paper's published values (:mod:`repro.core.expectations`).
"""

from repro.core.config import StudyConfig
from repro.core.study import CharacterizationStudy, StudyResults
from repro.core.compare import ShapeCheck, run_shape_checks
from repro.core.calibration import CalibrationRow, calibration_report, miscalibrated
from repro.core import expectations

__all__ = [
    "StudyConfig",
    "CharacterizationStudy",
    "StudyResults",
    "ShapeCheck",
    "run_shape_checks",
    "CalibrationRow",
    "calibration_report",
    "miscalibrated",
    "expectations",
]

"""repro — reproduction of the HPDC '22 multi-layer supercomputer I/O study.

The supported public surface lives in :mod:`repro.api` and is lazily
re-exported here (PEP 562), so ``import repro`` stays cheap — numpy and
the analysis stack load only when a symbol is first touched::

    import repro

    store = repro.generate_store("summit", scale=1e-3, seed=7)
    table = repro.run_query(store, "table3")
    print(repro.list_queries())

Deep imports keep working unchanged (``from repro.analysis import
layer_volumes``), but only the names below are the stable contract —
see :mod:`repro.api` for the documented guarantees. The main areas:

* :class:`repro.core.CharacterizationStudy` — generate a synthetic year
  and run every table/figure analysis of the paper.
* :mod:`repro.workloads` — the calibrated population generator.
* :mod:`repro.darshan` — the Darshan-style log model and binary format.
* :mod:`repro.iosim` — GPFS/Lustre/DataWarp/NVMe substrates and the
  performance model.
* :mod:`repro.analysis` — the paper's analyses.
* :mod:`repro.serve` — the concurrent analysis-serving subsystem.
* :mod:`repro.federation` — multi-store catalogs and scatter-gather
  queries across facilities/months (``repro catalog``, ``--catalog``).
* :mod:`repro.obs` — cross-layer span tracing (``--trace``).
* :mod:`repro.optimize` — the paper's recommendations as advisors.

Command line: ``python -m repro --help``.
"""

__version__ = "1.1.0"

#: Lazy top-level exports: name -> (module, attribute). Everything here
#: must also be exported (and documented) by :mod:`repro.api`; the API
#: snapshot test pins both sides.
_LAZY_EXPORTS = {
    "CharacterizationStudy": ("repro.api", "CharacterizationStudy"),
    "RecordStore": ("repro.api", "RecordStore"),
    "ReproError": ("repro.api", "ReproError"),
    "SpecError": ("repro.api", "SpecError"),
    "StoreCatalog": ("repro.api", "StoreCatalog"),
    "StudyConfig": ("repro.api", "StudyConfig"),
    "Tracer": ("repro.api", "Tracer"),
    "WorkloadSpec": ("repro.api", "WorkloadSpec"),
    "compile_spec": ("repro.api", "compile_spec"),
    "generate_store": ("repro.api", "generate_store"),
    "get_tracer": ("repro.api", "get_tracer"),
    "list_queries": ("repro.api", "list_queries"),
    "list_specs": ("repro.api", "list_specs"),
    "load_catalog": ("repro.api", "load_catalog"),
    "load_spec": ("repro.api", "load_spec"),
    "load_store": ("repro.api", "load_store"),
    "run_query": ("repro.api", "run_query"),
    "save_store": ("repro.api", "save_store"),
    "set_tracer": ("repro.api", "set_tracer"),
    "write_trace": ("repro.api", "write_trace"),
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    """PEP 562 lazy attribute loading for the public surface."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    # Cache on the module so the import machinery runs at most once per
    # name; later accesses are plain attribute reads.
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

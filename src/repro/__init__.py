"""repro — reproduction of the HPDC '22 multi-layer supercomputer I/O study.

See README.md for the tour; the main entry points:

* :class:`repro.core.CharacterizationStudy` — generate a synthetic year
  and run every table/figure analysis of the paper.
* :class:`repro.workloads.generator.WorkloadGenerator` — the calibrated
  population generator.
* :mod:`repro.darshan` — the Darshan-style log model and binary format.
* :mod:`repro.iosim` — GPFS/Lustre/DataWarp/NVMe substrates and the
  performance model.
* :mod:`repro.analysis` — the paper's analyses.
* :mod:`repro.optimize` — the paper's recommendations as advisors.

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

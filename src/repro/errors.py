"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from :class:`ReproError`
so downstream users can catch library failures without masking programming
errors (``TypeError``, ``ValueError`` from misuse are still raised directly
where appropriate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LogFormatError(ReproError):
    """A serialized Darshan-style log is malformed or unsupported.

    Raised by :mod:`repro.darshan.format` when magic bytes, versions,
    checksums, or region tables do not validate.
    """


class LogValidationError(ReproError):
    """An in-memory log violates a semantic invariant.

    Raised by :mod:`repro.darshan.validate`, e.g. negative counters, byte
    totals inconsistent with histogram bins, or end time before start time.
    """


class ConfigurationError(ReproError):
    """A platform, workload, or study configuration is inconsistent."""


class SimulationError(ReproError):
    """A storage-substrate simulator was driven into an invalid state.

    e.g. staging a file into a DataWarp allocation that was never created,
    or writing past a node-local device's capacity.
    """


class SchedulerError(ReproError):
    """The batch scheduler rejected a job or directive."""


class ShardError(ReproError):
    """A worker of a sharded parallel pipeline failed.

    Carries the failing shard's id so a facility-scale generate/ingest run
    can report *which* slice of the work died (and, for ingest, which log
    file inside it) instead of an anonymous pool traceback.
    """

    def __init__(self, shard_id: int, message: str):
        super().__init__(f"shard {shard_id}: {message}")
        self.shard_id = shard_id


class StoreError(ReproError):
    """The columnar record store was used inconsistently.

    e.g. concatenating stores with mismatching schemas or filtering with a
    mask of the wrong length.
    """


class MergeSchemaError(StoreError):
    """Stores with different schema versions were unioned.

    Raised by :func:`repro.store.merge.merge_stores` (and the federation
    layer above it) when member stores disagree on
    ``RecordStore.schema_version`` — e.g. a catalog mixing a store
    written by an older library with one written by a newer one. The
    union would silently reinterpret columns; refusing with the pair of
    versions lets the operator re-save the stragglers instead.
    """


class CatalogError(ReproError):
    """Base class for :mod:`repro.federation` catalog failures.

    Also raised directly for manifest-level problems (corrupt manifest
    JSON, unknown catalog format, verify failures) that have no more
    specific subclass.
    """


class CatalogMemberError(CatalogError):
    """A catalog member is missing, corrupt, or unreachable.

    Carries the member's label so a federation over dozens of
    facility-months reports *which* member died, not an anonymous
    store error.
    """

    def __init__(self, label: str, message: str):
        super().__init__(f"member {label!r}: {message}")
        self.label = label


class UnknownMemberError(CatalogError):
    """A query routed to a member label the catalog does not know."""


class AnalysisError(ReproError):
    """An analysis was asked for something the data cannot answer.

    e.g. requesting a CDF over an empty selection or a performance
    distribution for a bin with no observations when strict mode is on.
    """


class StreamError(ReproError):
    """The NDJSON append-log ingest path was used inconsistently.

    e.g. a stream file that shrank below a reader's resume offset, or a
    malformed line under the ``raise`` error policy (malformed *content*
    inside a line is a :class:`LogFormatError`; this class covers the
    stream/offset discipline around the lines).
    """


class CheckpointError(StreamError):
    """A stream checkpoint is malformed or inconsistent with its store.

    Raised on unreadable checkpoint files and on duplicate-offset
    replay: resuming a stream against a store whose ingested-log count
    disagrees with the checkpoint would apply the same lines twice.
    """


class SpecError(ReproError):
    """A declarative workload spec failed to validate or compile.

    Carries the dotted field path of the offending key so a message reads
    ``phases[2].params.ckpt_gb: must be <= 4096`` instead of a bare
    ``KeyError`` — the spec surface's contract is that every rejection
    names the field and the allowed values/range.
    """

    def __init__(self, path: str, message: str):
        super().__init__(f"{path}: {message}" if path else message)
        self.path = path


class WhatIfError(ReproError):
    """A what-if scenario was specified inconsistently.

    e.g. an unknown scenario name, a parameter outside its declared
    bounds, or a sweep axis that expands to no points.
    """


class ServeError(ReproError):
    """Base class for :mod:`repro.serve` failures.

    Also raised directly for protocol-level problems (malformed request
    framing, unknown parameters) that have no more specific subclass.
    """


class UnknownQueryError(ServeError):
    """A request named a query the engine's registry does not know."""


class ServiceOverloadError(ServeError):
    """The service shed a request instead of queueing it unboundedly.

    Raised when admission would push the worker pool's queue past its
    configured depth. Clients should back off and retry; the server is
    healthy, just saturated.
    """


class QueryTimeoutError(ServeError):
    """A request's deadline elapsed before its result was ready.

    The underlying computation is not cancelled (worker threads cannot
    be killed); the deadline bounds how long the *caller* waits. A
    later identical request can still be served from cache once the
    stray computation lands.
    """

"""NDJSON append-log ingest: tail a growing log stream into a RecordStore.

The paper's facility setting — millions of Darshan logs per year arriving
continuously — needs an ingest path that *appends*. This package provides
it, end to end:

* :mod:`repro.stream.format` — one JSON object per line encodes one
  :class:`~repro.darshan.log.DarshanLog` (job record, name records,
  per-module counters); malformed lines raise typed
  :class:`~repro.errors.LogFormatError`.
* :mod:`repro.stream.reader` — :class:`LogTailReader` consumes complete
  lines from a byte offset (a partially-written tail line is left for the
  next poll), with a persistent :class:`StreamCheckpoint` for
  crash-safe resume and a ``skip`` policy for garbled lines.
* :mod:`repro.stream.ingest` — :class:`StreamIngestor` batches parsed
  logs through the columnar :func:`repro.store.ingest.ingest_logs`
  machinery and applies them with :meth:`RecordStore.append`, which
  delta-updates any live analysis context instead of invalidating it;
  :func:`follow` is the ``repro ingest --follow`` loop.
"""

from repro.stream.format import dump_line, log_from_json, log_to_json, parse_line
from repro.stream.ingest import FollowStats, StreamIngestor, follow, ingest_stream
from repro.stream.reader import LogTailReader, StreamCheckpoint

__all__ = [
    "FollowStats",
    "LogTailReader",
    "StreamCheckpoint",
    "StreamIngestor",
    "dump_line",
    "follow",
    "ingest_stream",
    "log_from_json",
    "log_to_json",
    "parse_line",
]

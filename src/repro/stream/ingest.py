"""Applying streamed logs to a RecordStore, batch by batch.

:class:`StreamIngestor` turns parsed :class:`DarshanLog` batches into
columnar rows via the same :func:`repro.store.ingest.ingest_logs`
machinery the batch path uses, then remaps the batch-local id spaces
onto the target store — log ids shift by the store's current log-space
width (the serial enumeration, empty logs included), extension codes
remap through a first-seen catalog union — and applies them with
:meth:`RecordStore.append`, the delta-aware mutation. A store grown one
batch at a time is therefore **byte-identical** to a store batch-built
from the same logs in the same order; the differential harness holds
the two side by side.

:func:`follow` is the tail loop behind ``repro ingest --follow``:
poll, batch, apply, checkpoint, repeat.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.darshan.log import DarshanLog
from repro.errors import CheckpointError
from repro.obs.tracer import trace_event, trace_span
from repro.platforms.machine import MountTable
from repro.store.ingest import ingest_logs
from repro.store.recordstore import RecordStore
from repro.stream.reader import LogTailReader, StreamCheckpoint


def _log_space_width(store: RecordStore) -> int:
    """Width of the store's occupied log-id space (next free log id).

    Mirrors :func:`repro.store.merge._remap_log_ids`: the job table's
    ``nlogs`` total counts logs that contributed no file rows, the file
    table's max id covers stores whose job table is incomplete.
    """
    width = int(store.jobs["nlogs"].sum()) if len(store.jobs) else 0
    if len(store.files):
        width = max(width, int(store.files["log_id"].max()) + 1)
    return width


class StreamIngestor:
    """Appends batches of parsed logs onto one target store."""

    def __init__(self, store: RecordStore, mounts: MountTable):
        self.store = store
        self._mounts = mounts
        self._next_log_id = _log_space_width(store)

    @property
    def logs_applied(self) -> int:
        """Total log-id space the store occupies (checkpoint identity)."""
        return self._next_log_id

    def checkpoint(self, reader: LogTailReader) -> StreamCheckpoint:
        """The resume state to persist after an applied batch."""
        return StreamCheckpoint(
            stream=reader.path, offset=reader.offset, logs=self._next_log_id
        )

    def verify_checkpoint(self, ckpt: StreamCheckpoint) -> None:
        """Reject resume states inconsistent with the target store.

        A checkpoint older than the store (fewer logs) would replay
        lines the store already absorbed — duplicate rows, silently;
        a newer one means lines were applied elsewhere and this store
        would skip them. Both are :class:`CheckpointError`.
        """
        if ckpt.logs != self._next_log_id:
            raise CheckpointError(
                f"checkpoint for {ckpt.stream!r} says {ckpt.logs} logs "
                f"applied but the store's log space holds "
                f"{self._next_log_id}; refusing to replay or skip records"
            )

    def apply(self, logs: Sequence[DarshanLog]) -> int:
        """Append one batch; returns the number of file rows added."""
        logs = list(logs)
        if not logs:
            return 0
        store = self.store
        with trace_span("stream.apply", "stream") as sp:
            batch = ingest_logs(
                logs, store.platform, self._mounts,
                domains=store.domains, scale=store.scale,
            )
            files = batch.files
            files["log_id"] += self._next_log_id
            new_names, lut = self._union_extensions(batch.extensions)
            if lut is not None:
                files["ext"] = lut[files["ext"].astype(np.int32) + 1]
            store.append(files, batch.jobs, new_extensions=new_names)
            # Every log consumes one id — ingest enumerates them all,
            # including logs that contributed no file rows.
            self._next_log_id += len(logs)
            if sp is not None:
                sp.add(
                    logs=len(logs), rows=len(files),
                    generation=store.generation,
                )
        return len(files)

    def _union_extensions(
        self, batch_catalog: Sequence[str]
    ) -> tuple[tuple[str, ...], np.ndarray | None]:
        """New catalog names, and a code LUT when remapping is needed.

        First-seen union (like :func:`repro.store.merge._union_catalog`)
        so batch-at-a-time growth reproduces the serial catalog order.
        The LUT is indexed by ``old_code + 1``: the −1 "no extension"
        sentinel maps to itself.
        """
        index = {name: i for i, name in enumerate(self.store.extensions)}
        new_names: list[str] = []
        lut = np.empty(len(batch_catalog) + 1, dtype=np.int16)
        lut[0] = -1
        identity = True
        for i, name in enumerate(batch_catalog):
            code = index.get(name)
            if code is None:
                code = len(index)
                index[name] = code
                new_names.append(name)
            lut[i + 1] = code
            identity = identity and code == i
        return tuple(new_names), None if identity else lut


@dataclass
class FollowStats:
    """What one :func:`follow` run did."""

    batches: int = 0
    logs: int = 0
    rows: int = 0
    skipped: int = 0
    offset: int = 0


def follow(
    reader: LogTailReader,
    ingestor: StreamIngestor,
    *,
    batch_logs: int = 256,
    poll_interval: float = 0.05,
    max_batches: int | None = None,
    idle_polls: int | None = None,
    final: bool = False,
    checkpoint_path: str | None = None,
    on_append: Callable[[RecordStore], None] | None = None,
) -> FollowStats:
    """Tail the stream, applying batches until a stop condition.

    Stop conditions: ``max_batches`` applied; ``idle_polls`` consecutive
    empty polls (None = poll forever); or, with ``final=True``, the
    first poll that drains the stream (one-shot ingest of a complete
    file). After each applied batch the checkpoint is persisted (when a
    path is given) and ``on_append`` runs — the serve engine's
    ``refresh`` hook goes there.
    """
    stats = FollowStats()
    idle = 0
    with trace_span("stream.follow", "stream") as sp:
        while True:
            if max_batches is not None and stats.batches >= max_batches:
                break
            logs = reader.poll(max_logs=batch_logs, final=final)
            if logs:
                idle = 0
                stats.rows += ingestor.apply(logs)
                stats.batches += 1
                stats.logs += len(logs)
                if checkpoint_path is not None:
                    ingestor.checkpoint(reader).save(checkpoint_path)
                    trace_event(
                        "stream.checkpoint", "stream",
                        offset=reader.offset, logs=ingestor.logs_applied,
                    )
                if on_append is not None:
                    on_append(ingestor.store)
                continue
            if final:
                break
            idle += 1
            if idle_polls is not None and idle >= idle_polls:
                break
            time.sleep(poll_interval)
        stats.skipped = reader.skipped
        stats.offset = reader.offset
        if sp is not None:
            sp.add(batches=stats.batches, logs=stats.logs, rows=stats.rows,
                   skipped=stats.skipped)
    return stats


def ingest_stream(
    path: str,
    store: RecordStore,
    mounts: MountTable,
    *,
    checkpoint_path: str | None = None,
    on_error: str = "raise",
    batch_logs: int = 256,
    follow_stream: bool = False,
    poll_interval: float = 0.05,
    max_batches: int | None = None,
    idle_polls: int | None = None,
    on_append: Callable[[RecordStore], None] | None = None,
) -> FollowStats:
    """Ingest an NDJSON stream into ``store``, resuming from a checkpoint.

    With a ``checkpoint_path`` that exists, reading resumes at its
    offset after verifying it matches both the stream path and the
    store's ingested-log count (:meth:`StreamIngestor.verify_checkpoint`
    — the duplicate-offset replay guard). ``follow_stream=False`` is a
    one-shot pass over the complete file; ``True`` keeps tailing until
    ``max_batches``/``idle_polls`` says stop.
    """
    ingestor = StreamIngestor(store, mounts)
    offset = 0
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        ckpt = StreamCheckpoint.load(checkpoint_path)
        if os.path.abspath(ckpt.stream) != os.path.abspath(path):
            raise CheckpointError(
                f"checkpoint {checkpoint_path} tracks stream "
                f"{ckpt.stream!r}, not {path!r}"
            )
        ingestor.verify_checkpoint(ckpt)
        offset = ckpt.offset
    reader = LogTailReader(path, offset=offset, on_error=on_error)
    return follow(
        reader,
        ingestor,
        batch_logs=batch_logs,
        poll_interval=poll_interval,
        max_batches=max_batches,
        idle_polls=idle_polls,
        final=not follow_stream,
        checkpoint_path=checkpoint_path,
        on_append=on_append,
    )

"""NDJSON codec: one :class:`DarshanLog` per line.

The binary container (:mod:`repro.darshan.format`) is the archival
format; collectors that *append* — one log per completed application
instance, à la an ``invocations.jsonl`` sink — want a line-oriented form
instead, because a line boundary is a durable record boundary: a reader
can always distinguish "complete record" from "still being written".

Schema (one JSON object per line)::

    {"job": {"job_id": .., "user_id": .., "nprocs": .., "start_time": ..,
             "end_time": .., "platform": "..", "domain": "..",
             "metadata": {..}},
     "names": [{"id": .., "path": "..", "mount": "..", "layer": ".."}, ..],
     "records": [{"module": "POSIX", "id": .., "rank": ..,
                  "counters": [..], "fcounters": [..]}, ..]}

Every malformed input — wrong JSON type, missing key, unknown module,
counter arrays of the wrong length, a record referencing an unregistered
name — raises :class:`~repro.errors.LogFormatError`; no bare
``KeyError``/``TypeError``/``ValueError`` escapes. DXT traces are not
carried (they are disabled on the target systems, §2.2).
"""

from __future__ import annotations

import json

from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.errors import LogFormatError


def log_to_json(log: DarshanLog) -> dict:
    """The wire dict for one log (stable key order for diffability)."""
    job = log.job
    return {
        "job": {
            "job_id": job.job_id,
            "user_id": job.user_id,
            "nprocs": job.nprocs,
            "start_time": job.start_time,
            "end_time": job.end_time,
            "platform": job.platform,
            "domain": job.domain,
            "metadata": dict(job.metadata),
        },
        "names": [
            {
                "id": name.record_id,
                "path": name.path,
                "mount": name.mount_point,
                "layer": name.layer,
            }
            for _, name in sorted(log.name_records().items())
        ],
        "records": [
            {
                "module": rec.module.name,
                "id": rec.record_id,
                "rank": rec.rank,
                "counters": [int(c) for c in rec.counters],
                "fcounters": [float(c) for c in rec.fcounters],
            }
            for rec in log.iter_records()
        ],
    }


def dump_line(log: DarshanLog) -> str:
    """One newline-terminated NDJSON line for a log.

    ``ensure_ascii`` keeps every byte printable ASCII, so the only
    newline in the output is the terminator — the framing invariant the
    tail reader relies on.
    """
    return json.dumps(log_to_json(log), separators=(",", ":")) + "\n"


def _get(obj: dict, key: str, types, where: str):
    try:
        value = obj[key]
    except (KeyError, TypeError):
        raise LogFormatError(f"stream {where}: missing key {key!r}") from None
    if not isinstance(value, types) or isinstance(value, bool):
        raise LogFormatError(
            f"stream {where}: key {key!r} has type {type(value).__name__}"
        )
    return value


def _ranged(obj: dict, key: str, lo: int, hi: int, where: str) -> int:
    """An integer field that must fit its destination store column.

    JSON integers are unbounded; the columnar store's are not. Rejecting
    out-of-range values here keeps the overflow a typed format error
    instead of a bare numpy exception deep inside ingest.
    """
    value = _get(obj, key, int, where)
    if not lo <= value <= hi:
        raise LogFormatError(
            f"stream {where}: {key}={value} outside [{lo}, {hi}]"
        )
    return value


_I64 = 2**63 - 1
_U64 = 2**64 - 1
_I32 = 2**31 - 1


def log_from_json(obj: dict) -> DarshanLog:
    """Decode one wire dict back into a :class:`DarshanLog`."""
    if not isinstance(obj, dict):
        raise LogFormatError(
            f"stream record: expected a JSON object, got {type(obj).__name__}"
        )
    jd = _get(obj, "job", dict, "record")
    metadata = jd.get("metadata", {})
    if not isinstance(metadata, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in metadata.items()
    ):
        raise LogFormatError("stream job: metadata must map strings to strings")
    try:
        job = JobRecord(
            job_id=_ranged(jd, "job_id", 0, _I64, "job"),
            user_id=_ranged(jd, "user_id", 0, _I64, "job"),
            nprocs=_ranged(jd, "nprocs", 0, _I32, "job"),
            start_time=float(_get(jd, "start_time", (int, float), "job")),
            end_time=float(_get(jd, "end_time", (int, float), "job")),
            platform=_get(jd, "platform", str, "job"),
            domain=_get(jd, "domain", str, "job"),
            metadata=dict(metadata),
        )
    except ValueError as exc:  # JobRecord invariants (nprocs, time order)
        raise LogFormatError(f"stream job: {exc}") from None
    log = DarshanLog(job)
    for entry in _get(obj, "names", list, "record"):
        if not isinstance(entry, dict):
            raise LogFormatError("stream names: entries must be objects")
        try:
            log.register_name(
                NameRecord(
                    record_id=_ranged(entry, "id", 0, _U64, "name"),
                    path=_get(entry, "path", str, "name"),
                    mount_point=_get(entry, "mount", str, "name"),
                    layer=_get(entry, "layer", str, "name"),
                )
            )
        except ValueError as exc:  # conflicting rebind
            raise LogFormatError(f"stream names: {exc}") from None
    for entry in _get(obj, "records", list, "record"):
        if not isinstance(entry, dict):
            raise LogFormatError("stream records: entries must be objects")
        module_name = _get(entry, "module", str, "file record")
        try:
            module = ModuleId[module_name]
        except KeyError:
            raise LogFormatError(
                f"stream file record: unknown module {module_name!r}"
            ) from None
        counters = _get(entry, "counters", list, "file record")
        fcounters = _get(entry, "fcounters", list, "file record")
        try:
            record = FileRecord(
                module,
                _ranged(entry, "id", 0, _U64, "file record"),
                rank=_ranged(entry, "rank", -1, _I32, "file record"),
                counters=counters,
                fcounters=fcounters,
            )
        except (ValueError, TypeError, OverflowError) as exc:  # shape/dtype
            raise LogFormatError(f"stream file record: {exc}") from None
        try:
            log.add_record(record)
        except KeyError as exc:
            raise LogFormatError(f"stream file record: {exc}") from None
    return log


def parse_line(line: bytes | str) -> DarshanLog:
    """Parse one complete NDJSON line into a log (typed errors only)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise LogFormatError(f"stream line: invalid UTF-8 ({exc})") from None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"stream line: invalid JSON ({exc.msg})") from None
    return log_from_json(obj)

"""Tail-style NDJSON reading with resumable byte offsets.

:class:`LogTailReader` polls a growing stream file from a byte offset and
yields only *complete* lines — a trailing partial line (no terminating
newline yet: a record mid-write, or a mid-record truncation) is left
unconsumed, so the offset only ever advances past durable records. That
is the whole crash-safety story: persist the offset
(:class:`StreamCheckpoint`) after applying a batch, and a restarted
reader resumes exactly after the last applied record.

Garbled lines follow the reader's error policy: ``"raise"`` surfaces the
typed :class:`~repro.errors.LogFormatError` (offset attached),
``"skip"`` counts the line, records the error, and keeps going — either
way the line is consumed and can never corrupt the store, because
nothing reaches ingest unless it parsed cleanly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.darshan.log import DarshanLog
from repro.errors import CheckpointError, LogFormatError, StreamError
from repro.obs.tracer import trace_event, trace_span
from repro.stream.format import parse_line

_ERROR_POLICIES = ("raise", "skip")


@dataclass
class StreamCheckpoint:
    """Resume state for one stream: where to read next, and how many
    logs the target store has already absorbed (the replay guard)."""

    stream: str
    offset: int
    logs: int

    def save(self, path: str) -> None:
        payload = json.dumps(
            {"stream": self.stream, "offset": self.offset, "logs": self.logs}
        )
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp, path)  # atomic: a crash never leaves a torn file

    @classmethod
    def load(cls, path: str) -> "StreamCheckpoint":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                obj = json.load(fh)
            stream = obj["stream"]
            offset = obj["offset"]
            logs = obj["logs"]
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint at {path}") from None
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint {path}: {exc!r}") from None
        if (
            not isinstance(stream, str)
            or not isinstance(offset, int)
            or not isinstance(logs, int)
            or isinstance(offset, bool)
            or isinstance(logs, bool)
            or offset < 0
            or logs < 0
        ):
            raise CheckpointError(f"malformed checkpoint {path}: bad field types")
        return cls(stream=stream, offset=offset, logs=logs)


class LogTailReader:
    """Incremental reader over one NDJSON stream file.

    ``offset`` is the byte position reading starts from (resume point);
    ``on_error`` is ``"raise"`` or ``"skip"`` for lines that do not
    parse. :attr:`offset` always points just past the last *consumed*
    line, so it is safe to checkpoint at any time.
    """

    def __init__(self, path: str, *, offset: int = 0, on_error: str = "raise"):
        if on_error not in _ERROR_POLICIES:
            raise StreamError(
                f"on_error must be one of {_ERROR_POLICIES}, got {on_error!r}"
            )
        if offset < 0:
            raise StreamError(f"offset must be >= 0, got {offset}")
        self.path = os.fspath(path)
        self.offset = offset
        self.on_error = on_error
        #: Garbled lines consumed under the ``skip`` policy.
        self.skipped = 0
        #: Message of the most recent skipped line's error.
        self.last_error: str | None = None

    def poll(
        self, *, max_logs: int | None = None, final: bool = False
    ) -> list[DarshanLog]:
        """Parse complete lines appended since the last poll.

        ``max_logs`` bounds how many parsed logs are returned (the
        offset advances only past the lines actually consumed, so a
        capped poll is checkpoint-exact). ``final=True`` declares that
        no more bytes are coming: a dangling partial line is then an
        error (or a skip) instead of patient waiting.

        Under the ``raise`` policy a bad line only raises when it heads
        the poll window; lines parsed before it are delivered first and
        the offset parks on the bad line, so the error surfaces on the
        *next* poll and no parsed record is ever lost.
        """
        with trace_span("stream.poll", "stream") as sp:
            logs, nbytes = self._poll(max_logs=max_logs, final=final)
            if sp is not None:
                sp.add(
                    path=self.path, logs=len(logs), bytes=nbytes,
                    offset=self.offset,
                )
            return logs

    def _poll(
        self, *, max_logs: int | None, final: bool
    ) -> tuple[list[DarshanLog], int]:
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size < self.offset:
                    raise StreamError(
                        f"stream {self.path} shrank to {size} bytes below "
                        f"resume offset {self.offset}; refusing to re-read"
                    )
                fh.seek(self.offset)
                data = fh.read()
        except OSError as exc:
            raise StreamError(f"cannot read stream {self.path}: {exc}") from None

        logs: list[DarshanLog] = []
        start = self.offset
        pos = 0
        while pos < len(data):
            if max_logs is not None and len(logs) >= max_logs:
                break
            nl = data.find(b"\n", pos)
            if nl < 0:
                # Partial tail: a record still being written (or cut off
                # mid-write). Leave it unconsumed unless the stream is
                # declared complete. Under the raise policy _bad_line
                # raises before the offset advances, so a retry sees the
                # same bytes.
                if final:
                    if self.on_error == "raise" and logs:
                        break  # deliver parsed logs; next poll raises
                    self._bad_line(
                        data[pos:],
                        LogFormatError(
                            f"stream {self.path}: truncated record at end "
                            f"of stream (offset {self.offset})"
                        ),
                    )
                    self.offset += len(data) - pos
                    pos = len(data)
                break
            line = data[pos:nl]
            advance = nl + 1 - pos
            pos = nl + 1
            if line.strip():  # blank separator lines are legal and empty
                try:
                    logs.append(parse_line(line))
                except LogFormatError as exc:
                    if self.on_error == "raise" and logs:
                        # Deliver what already parsed without consuming
                        # the bad line; the next poll starts exactly on
                        # it and raises cleanly. No record is ever
                        # consumed but undelivered.
                        break
                    self._bad_line(line, exc)
            self.offset += advance
        return logs, self.offset - start

    def _bad_line(self, line: bytes, exc: LogFormatError) -> None:
        if self.on_error == "raise":
            raise LogFormatError(
                f"{exc} (stream {self.path}, offset {self.offset})"
            ) from None
        self.skipped += 1
        self.last_error = str(exc)
        trace_event(
            "stream.skip", "stream",
            path=self.path, offset=self.offset, error=str(exc),
        )

    def __repr__(self) -> str:
        return (
            f"LogTailReader({self.path!r}, offset={self.offset}, "
            f"on_error={self.on_error!r}, skipped={self.skipped})"
        )

"""Degraded-layer scenarios: what production failures do to delivered I/O.

Facilities run the paper's subsystems through disk rebuilds, OSS
failovers, and burst-buffer node drains; delivered bandwidth sags long
before anything is "down". This module builds degraded variants of a
platform — fewer servers, reduced peaks, rebuild-traffic contention — so
any experiment in the suite (IOR probes, Figure 11-style panels, staging
assessments) can be replayed under failure and compared against healthy
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.iosim.contention import ContentionModel
from repro.iosim.perfmodel import PerfModel
from repro.platforms.machine import Machine
from repro.platforms.storage import StorageLayer


@dataclass(frozen=True)
class DegradationScenario:
    """One failure mode's effect on a storage layer."""

    name: str
    #: Fraction of the layer's servers unavailable (failed/draining).
    servers_offline: float = 0.0
    #: Extra bandwidth lost to rebuild/failover traffic on the survivors.
    rebuild_overhead: float = 0.0
    #: Contention worsens: availability Beta shifts toward low fractions.
    contention_alpha: float = 2.0
    contention_beta: float = 3.0

    def __post_init__(self) -> None:
        if not 0 <= self.servers_offline < 1:
            raise ConfigurationError("servers_offline must be in [0, 1)")
        if not 0 <= self.rebuild_overhead < 1:
            raise ConfigurationError("rebuild_overhead must be in [0, 1)")

    @property
    def capacity_factor(self) -> float:
        """Surviving fraction of nominal bandwidth."""
        return (1.0 - self.servers_offline) * (1.0 - self.rebuild_overhead)


#: An OSS/NSD enclosure failure mid-rebuild: ~10% of servers out, heavy
#: rebuild reads on the rest.
REBUILD_STORM = DegradationScenario(
    name="rebuild-storm",
    servers_offline=0.10,
    rebuild_overhead=0.35,
    contention_alpha=1.6,
    contention_beta=3.5,
)

#: Rolling burst-buffer drain for maintenance: a quarter of BB nodes out.
BB_DRAIN = DegradationScenario(
    name="bb-drain",
    servers_offline=0.25,
    rebuild_overhead=0.05,
)

#: Burst-buffer eviction storm: capacity pressure forces synchronous
#: flushes to the PFS while allocations are being reclaimed — a fifth of
#: the BB fleet is effectively unavailable and the survivors spend real
#: bandwidth on eviction traffic, with contention far above the layer's
#: usual job-exclusive calm.
EVICTION_STORM = DegradationScenario(
    name="eviction-storm",
    servers_offline=0.20,
    rebuild_overhead=0.30,
    contention_alpha=1.8,
    contention_beta=4.0,
)

#: Named presets, for CLI/what-if parameter surfaces.
PRESETS: dict[str, DegradationScenario] = {
    s.name: s for s in (REBUILD_STORM, BB_DRAIN, EVICTION_STORM)
}


def preset(name: str) -> DegradationScenario:
    """Look a degradation preset up by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown degradation preset {name!r}; "
            f"available: {', '.join(sorted(PRESETS))}"
        ) from None


def degrade_layer(layer: StorageLayer, scenario: DegradationScenario) -> StorageLayer:
    """A degraded copy of a storage layer."""
    surviving = max(
        int(round(layer.server_count * (1.0 - scenario.servers_offline))), 1
    )
    factor = scenario.capacity_factor
    return replace(
        layer,
        server_count=surviving,
        peak_read_bw=layer.peak_read_bw * factor,
        peak_write_bw=layer.peak_write_bw * factor,
    )


def degrade_machine(
    machine: Machine, layer_key: str, scenario: DegradationScenario
) -> Machine:
    """A machine with one layer degraded."""
    if layer_key not in machine.layers:
        raise ConfigurationError(f"{machine.name} has no layer {layer_key!r}")
    layers = dict(machine.layers)
    layers[layer_key] = degrade_layer(layers[layer_key], scenario)
    return replace(machine, layers=layers)


def degraded_perf_model(
    base: PerfModel, layer_key: str, scenario: DegradationScenario
) -> PerfModel:
    """A perf model whose contention reflects the failure's interference.

    The degraded layer's *kind* ('pfs'/'insystem') gets the scenario's
    harsher availability distribution; other layers keep their defaults.
    """
    kind = "pfs" if layer_key == "pfs" else "insystem"
    contention = dict(base.contention)
    healthy = ContentionModel.for_layer_kind(kind)
    contention[kind] = ContentionModel(
        alpha=scenario.contention_alpha,
        beta=scenario.contention_beta,
        floor=healthy.floor,
        diurnal_amplitude=healthy.diurnal_amplitude,
    )
    return replace(base, contention=contention)

"""Data staging between storage layers.

Recommendation 3 of the paper is about exactly this machinery: moving
read-only inputs onto the fast layer before a job and write-only outputs
off it afterwards. We model the two deployment styles the paper contrasts
(§3.2.2):

* **DataWarp style (Cori/CBB)**: the *scheduler* executes stage-in/out
  directives outside the job's lifetime, so the job's Darshan log only
  sees burst-buffer traffic — producing Cori's 14.38% of jobs that touch
  CBB exclusively (Table 5).
* **Spectral/UnifyFS style (Summit/SCNL)**: the *runtime* flushes dirty
  node-local files to the PFS during/after the application, so the same
  job's log sees both layers and almost no job is SCNL-exclusive.

The engine also computes staging times from the :class:`PerfModel` so the
cost/benefit of staging can be studied (see the staging ablation bench).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.units import MiB


class StagingStyle(enum.Enum):
    """Who moves the data, and when (relative to the Darshan window)."""

    #: Scheduler-driven, outside the job window (DataWarp / CBB).
    SCHEDULER = "scheduler"
    #: Runtime-driven, inside the job window (Spectral, UnifyFS / SCNL).
    RUNTIME = "runtime"


@dataclass(frozen=True)
class StagePlan:
    """A planned movement of one file between layers."""

    path: str
    size: int
    #: "in" moves PFS -> in-system before compute; "out" the reverse after.
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise SimulationError(f"direction must be 'in'/'out', got {self.direction!r}")
        if self.size < 0:
            raise SimulationError("staged size must be non-negative")


class StagingEngine:
    """Plans and costs staging for a job's file set."""

    def __init__(self, machine: Machine, perf: PerfModel, style: StagingStyle):
        self.machine = machine
        self.perf = perf
        self.style = style

    def plan_for_files(
        self, files: list[tuple[str, int, str]]
    ) -> list[StagePlan]:
        """Build a staging plan from ``(path, size, opclass)`` triples.

        ``opclass`` is the paper's read-only / write-only / read-write
        classification. Read-only files can be staged in; write-only files
        written on the fast layer and staged out; read-write files need
        both movements. This is the §3.2.2 observation operationalized:
        95.7% (Summit) / 90.1% (Cori) of PFS files are RO or WO and hence
        stageable.
        """
        plans: list[StagePlan] = []
        for path, size, opclass in files:
            if opclass not in ("read-only", "write-only", "read-write"):
                raise SimulationError(f"unknown opclass {opclass!r} for {path!r}")
            if opclass in ("read-only", "read-write"):
                plans.append(StagePlan(path, size, "in"))
            if opclass in ("write-only", "read-write"):
                plans.append(StagePlan(path, size, "out"))
        return plans

    def staging_time(self, plans: list[StagePlan], *, nprocs: int = 1,
                     rng: np.random.Generator | None = None) -> float:
        """Seconds to execute a plan (PFS-side bandwidth is the bottleneck).

        Stage-in reads the PFS; stage-out writes it. Movements within one
        direction proceed concurrently up to the PFS peak; we charge the
        dominant direction serially, which matches DataWarp's behaviour of
        running stage-in before the job and stage-out after it.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        total = 0.0
        pfs = self.machine.pfs
        for direction, pfs_dir in (("in", "read"), ("out", "write")):
            sizes = np.array([p.size for p in plans if p.direction == direction], dtype=np.float64)
            if not sizes.size:
                continue
            spec = TransferSpec(
                nbytes=sizes,
                request_size=np.full(sizes.shape, 8 * MiB, dtype=np.float64),
                nprocs=np.full(sizes.shape, max(nprocs, 1), dtype=np.float64),
                file_parallelism=np.full(sizes.shape, pfs.server_count, dtype=np.float64),
                shared=np.ones(sizes.shape, dtype=bool),
            )
            times = self.perf.transfer_time(pfs, IOInterface.POSIX, pfs_dir, spec, rng)
            # Concurrent within a direction: bounded below by the largest
            # single file, above by the serial sum; use the max of
            # (aggregate bytes / PFS peak) and the largest file's time.
            peak = pfs.peak_read_bw if pfs_dir == "read" else pfs.peak_write_bw
            total += max(float(sizes.sum()) / peak, float(times.max()))
        return total

    def visible_in_darshan_window(self) -> bool:
        """Whether staged traffic appears in the job's Darshan log.

        Scheduler-driven staging happens outside MPI_Init..MPI_Finalize,
        so it is invisible — the mechanism behind Table 5's asymmetry.
        """
        return self.style is StagingStyle.RUNTIME

"""An IOR-style synthetic benchmark runner over the simulated substrates.

TOKIO (Lockwood et al., SC '18 — reference [11] of the paper) probes
production file systems by periodically running fixed I/O benchmarks and
tracking the delivered bandwidth over time. This module provides the same
instrument for the simulator: an :class:`IorConfig` mirrors the knobs of
the real IOR benchmark (api, transferSize, blockSize, segmentCount,
filePerProc, collective, tasks), :func:`run_ior` executes it against a
platform layer through the performance model, and :func:`probe_series`
repeats it across a time span to expose the contention model's diurnal
structure — the "performance variation under production load" view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.iosim.contention import ContentionModel
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.platforms.storage import StorageLayer
from repro.units import GiB, MiB


@dataclass(frozen=True)
class IorConfig:
    """The subset of IOR parameters that matter to the model."""

    api: IOInterface = IOInterface.POSIX
    tasks: int = 64
    #: Bytes per I/O call (IOR -t).
    transfer_size: int = 1 * MiB
    #: Contiguous bytes per task per segment (IOR -b).
    block_size: int = 256 * MiB
    #: Segments per task (IOR -s).
    segment_count: int = 1
    #: One file per task (IOR -F) vs a single shared file.
    file_per_proc: bool = False
    #: Collective MPI-IO (IOR -c); ignored for other APIs.
    collective: bool = False

    def __post_init__(self) -> None:
        if self.tasks <= 0:
            raise ConfigurationError("tasks must be positive")
        if self.transfer_size <= 0 or self.block_size <= 0:
            raise ConfigurationError("sizes must be positive")
        if self.segment_count <= 0:
            raise ConfigurationError("segment_count must be positive")
        if self.block_size % self.transfer_size:
            raise ConfigurationError(
                "block_size must be a multiple of transfer_size (as in IOR)"
            )

    @property
    def aggregate_bytes(self) -> int:
        return self.tasks * self.block_size * self.segment_count

    @property
    def file_size(self) -> int:
        if self.file_per_proc:
            return self.block_size * self.segment_count
        return self.aggregate_bytes


@dataclass(frozen=True)
class IorResult:
    """One benchmark execution's outcome."""

    config: IorConfig
    direction: str
    seconds: float
    #: Aggregate delivered bandwidth, bytes/second.
    bandwidth: float


def _layout_parallelism(layer: StorageLayer, file_size: int) -> float:
    """Layout parallelism for a benchmark file on a layer."""
    block = layer.params.get("block_size")
    if block:  # GPFS
        return float(min(-(-file_size // block), layer.server_count))
    stripe = layer.params.get("stripe_size")
    if stripe:  # Lustre: benchmark teams stripe wide, unlike the default
        stripes = -(-file_size // stripe)
        return float(min(stripes, layer.server_count))
    return float(min(max(file_size // (128 * MiB), 1), layer.server_count))


def run_ior(
    machine: Machine,
    layer_key: str,
    config: IorConfig,
    direction: str,
    *,
    perf: PerfModel | None = None,
    rng: np.random.Generator | None = None,
) -> IorResult:
    """Execute one IOR run against a platform layer."""
    if direction not in ("read", "write"):
        raise ConfigurationError(f"direction must be read/write, got {direction!r}")
    layer = machine.layers[layer_key]
    perf = perf or PerfModel()
    rng = rng if rng is not None else np.random.default_rng(0)

    par = _layout_parallelism(layer, config.file_size)
    if config.file_per_proc:
        # N independent single-task files, concurrent: time is the max,
        # which the model prices as one file at per-task parallelism with
        # the aggregate capped by the layer share.
        spec = TransferSpec(
            nbytes=np.full(config.tasks, float(config.file_size)),
            request_size=np.full(config.tasks, float(config.transfer_size)),
            nprocs=np.ones(config.tasks),
            file_parallelism=np.full(config.tasks, par),
            shared=np.zeros(config.tasks, dtype=bool),
            collective=np.zeros(config.tasks, dtype=bool),
        )
        times = perf.transfer_time(layer, config.api, direction, spec, rng)
        seconds = float(times.max())
    else:
        spec = TransferSpec(
            nbytes=np.array([float(config.aggregate_bytes)]),
            request_size=np.array([float(config.transfer_size)]),
            nprocs=np.array([float(config.tasks)]),
            file_parallelism=np.array([par]),
            shared=np.array([True]),
            collective=np.array([config.collective]),
        )
        seconds = float(
            perf.transfer_time(layer, config.api, direction, spec, rng)[0]
        )
    return IorResult(
        config=config,
        direction=direction,
        seconds=seconds,
        bandwidth=config.aggregate_bytes / seconds if seconds > 0 else 0.0,
    )


def probe_series(
    machine: Machine,
    layer_key: str,
    config: IorConfig,
    direction: str,
    *,
    times_of_day: np.ndarray,
    perf: PerfModel | None = None,
    seed: int = 0,
) -> np.ndarray:
    """TOKIO-style periodic probing: bandwidth per probe time (bytes/s).

    Exposes the contention model's diurnal structure: probes at the
    facility's afternoon peak see less of the layer than 3 a.m. probes.
    """
    layer = machine.layers[layer_key]
    perf = perf or PerfModel()
    rng = np.random.default_rng(seed)
    times_of_day = np.asarray(times_of_day, dtype=np.float64)
    n = len(times_of_day)
    if n == 0:
        return np.empty(0)

    par = _layout_parallelism(layer, config.file_size)
    spec = TransferSpec(
        nbytes=np.full(n, float(config.aggregate_bytes)),
        request_size=np.full(n, float(config.transfer_size)),
        nprocs=np.full(n, float(config.tasks)),
        file_parallelism=np.full(n, par),
        shared=np.ones(n, dtype=bool),
        collective=np.full(n, config.collective),
    )
    # Price deterministically, then apply time-of-day contention so the
    # series isolates the production-load signal.
    saved = perf.deterministic
    perf.deterministic = True
    try:
        base = perf.sample_bandwidth(layer, config.api, direction, spec, rng)
    finally:
        perf.deterministic = saved
    contention = ContentionModel.for_layer_kind(layer.kind.value)
    frac = contention.sample(rng, n, time_of_day=times_of_day)
    return base * frac

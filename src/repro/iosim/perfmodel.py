"""End-to-end I/O bandwidth model.

Maps a per-file transfer — (storage layer, interface, direction, bytes,
typical request size, participating processes, file-layout parallelism) —
to a delivered bandwidth and time. The runtime uses it to fill the
``F_READ_TIME``/``F_WRITE_TIME`` counters, from which the §3.4 analysis
computes per-file bandwidth exactly the way the paper does
(``BYTES / TIME``).

The POSIX-vs-STDIO contrasts of Figures 11/12 *emerge* from four modeled
mechanisms rather than being hard-coded:

1. **Per-stream caps.** Each interface sustains a technology-dependent
   per-stream bandwidth: POSIX streams move data with large, aligned
   system calls (and kernel readahead); STDIO serializes every byte
   through one locked, buffered ``FILE*`` with an extra user-space copy,
   capping a stream well below POSIX.
2. **Parallelism.** POSIX/MPI-IO shared-file transfers scale with
   ``min(nprocs, file-layout parallelism)`` streams (GPFS blocks over
   NSDs, Lustre stripes over OSTs, NVMe devices over nodes, BB nodes of a
   DataWarp allocation). A shared STDIO file is a single stream — the
   ``FILE*`` lock serializes writers. This is why the POSIX advantage
   *grows* with transfer size (bigger transfers ride bigger jobs and wider
   layouts), up to the ~40x read gap in the 100 GB–1 TB bin on Alpine.
3. **Request-size efficiency.** A request of ``s`` bytes on a stream with
   cap ``c`` and per-op latency ``l`` delivers ``s / (s/c + l)`` — the
   classic latency/bandwidth pipe. STDIO coalesces tiny requests into
   buffer-sized system calls, so *very* small STDIO accesses beat POSIX
   (and buffered sequential writes on NVMe beat synchronous POSIX writes —
   the paper's SCNL 100 MB–1 GB write bin where STDIO wins by ~1.5x).
4. **Contention + variability.** A Beta-distributed available-bandwidth
   fraction (:mod:`repro.iosim.contention`) and lognormal measurement
   noise produce the production-load spread visible in the box plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.iosim.contention import ContentionModel
from repro.platforms.interfaces import IOInterface
from repro.platforms.storage import StorageLayer
from repro.units import GB, KiB, MiB

#: Effective syscall granularity of a sequential buffered FILE* stream.
#: glibc sizes stream buffers from the file system's st_blksize hint, which
#: on parallel file systems is far above the 8 KiB BUFSIZ default; layers
#: can override via ``params["stdio_buffer"]`` (Alpine reports its 16 MiB
#: GPFS block, Lustre its 1 MiB stripe); this is the fallback.
STDIO_BUFFER = 64 * KiB

#: Readahead/write-behind hides most per-op latency for a sequential
#: buffered stream; STDIO pays this fraction of the technology's latency.
STDIO_LATENCY_FACTOR = 0.25

#: MPI-IO collective buffering aggregates small requests to this size.
COLLECTIVE_BUFFER = 4 * MiB


@dataclass(frozen=True)
class StreamCaps:
    """Per-stream sustained caps (bytes/s) for one storage technology."""

    posix_read: float
    posix_write: float
    stdio_read: float
    stdio_write: float
    #: Per-operation latency (seconds): software stack + device/network.
    latency: float
    #: Lognormal noise sigma for delivered bandwidth.
    sigma: float

    def cap(self, interface: IOInterface, direction: str) -> tuple[float, float]:
        """(stream cap, per-op latency) for an interface/direction."""
        if direction not in ("read", "write"):
            raise ValueError(f"direction must be read/write, got {direction!r}")
        if interface is IOInterface.STDIO:
            c = self.stdio_read if direction == "read" else self.stdio_write
        else:  # POSIX and MPI-IO share the data path
            c = self.posix_read if direction == "read" else self.posix_write
        return c, self.latency


#: Default caps per storage technology, calibrated so the Figure 11/12
#: median contrasts land in the paper's reported ranges (see DESIGN.md §4).
DEFAULT_CAPS: dict[str, StreamCaps] = {
    "GPFS": StreamCaps(
        posix_read=3.0 * GB, posix_write=1.5 * GB,
        stdio_read=0.7 * GB, stdio_write=0.9 * GB,
        latency=300e-6, sigma=0.65,
    ),
    # Lustre: client readahead makes POSIX streams fast, but STDIO's
    # buffered reads defeat readahead entirely (each 1 MiB buffer fill is
    # a synchronous RPC round), so the read-side gap is the largest.
    "Lustre": StreamCaps(
        posix_read=2.6 * GB, posix_write=1.0 * GB,
        stdio_read=0.20 * GB, stdio_write=0.30 * GB,
        latency=400e-6, sigma=0.70,
    ),
    # Node-local NVMe: POSIX writes pay per-op device sync; STDIO's
    # write-back through the page cache approaches memcpy speed, which is
    # how STDIO wins the SCNL 100 MB-1 GB write bin in Figure 11b.
    "NVMe": StreamCaps(
        posix_read=5.5 * GB, posix_write=1.2 * GB,
        stdio_read=1.1 * GB, stdio_write=2.6 * GB,
        latency=10e-6, sigma=0.35,
    ),
    "DataWarp": StreamCaps(
        posix_read=1.6 * GB, posix_write=1.2 * GB,
        stdio_read=0.45 * GB, stdio_write=0.50 * GB,
        latency=80e-6, sigma=0.45,
    ),
}


@dataclass(frozen=True)
class TransferSpec:
    """Vectorized description of N per-file transfers on one layer."""

    nbytes: np.ndarray          # total bytes moved per file
    request_size: np.ndarray    # typical per-op request size, bytes
    nprocs: np.ndarray          # processes in the job
    file_parallelism: np.ndarray  # layout parallelism (stripes/blocks/nodes)
    shared: np.ndarray          # bool: all-rank shared file (rank -1)?
    collective: np.ndarray | None = None  # bool: MPI-IO collective path
    #: Job node counts; enables the interconnect injection cap when the
    #: model carries a network (see repro.iosim.netmodel).
    nnodes: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.nbytes)
        for name in ("request_size", "nprocs", "file_parallelism", "shared"):
            arr = getattr(self, name)
            if len(arr) != n:
                raise ConfigurationError(f"TransferSpec.{name} length {len(arr)} != {n}")
        if self.collective is not None and len(self.collective) != n:
            raise ConfigurationError("TransferSpec.collective length mismatch")
        if self.nnodes is not None and len(self.nnodes) != n:
            raise ConfigurationError("TransferSpec.nnodes length mismatch")

    def __len__(self) -> int:
        return len(self.nbytes)


@dataclass
class PerfModel:
    """Bandwidth model for one platform's storage layers."""

    caps: dict[str, StreamCaps] = field(default_factory=lambda: dict(DEFAULT_CAPS))
    contention: dict[str, ContentionModel] = field(default_factory=dict)
    #: Floor on reported bandwidth (a transfer never takes forever).
    min_bandwidth: float = 1e3
    #: Disable noise+contention for deterministic unit tests.
    deterministic: bool = False
    #: Diminishing returns of parallel streams (lock/token contention,
    #: shared client links): effective streams = streams ** exponent.
    #: Writes scale worse than reads (write tokens, block allocation).
    read_parallel_exponent: float = 0.65
    write_parallel_exponent: float = 0.40
    #: Under production load no single file sustains more than this
    #: fraction of the layer's aggregate peak (fair-share + placement).
    job_share_fraction: float = 0.005
    #: Model the FILE* buffer (request coalescing + latency hiding).
    #: Disabled only by the ablation bench — real libc always buffers.
    stdio_buffering: bool = True
    #: Optional interconnect model; when set and the spec carries node
    #: counts, transfers are capped at the job's fabric allotment.
    network: "object | None" = None

    def caps_for(self, layer: StorageLayer) -> StreamCaps:
        try:
            return self.caps[layer.technology]
        except KeyError:
            raise ConfigurationError(
                f"no stream caps for technology {layer.technology!r}"
            ) from None

    def _contention_for(self, layer: StorageLayer) -> ContentionModel:
        key = layer.kind.value
        if key not in self.contention:
            self.contention[key] = ContentionModel.for_layer_kind(key)
        return self.contention[key]

    # -- core model ---------------------------------------------------------
    def sample_bandwidth(
        self,
        layer: StorageLayer,
        interface: IOInterface,
        direction: str,
        spec: TransferSpec,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Delivered bandwidth (bytes/s) for each transfer in ``spec``."""
        n = len(spec)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        caps = self.caps_for(layer)
        cap, latency = caps.cap(interface, direction)

        # Mechanism 3: request-size efficiency with interface-specific
        # effective request size.
        req = np.asarray(spec.request_size, dtype=np.float64)
        req = np.maximum(req, 1.0)
        if interface is IOInterface.STDIO:
            if self.stdio_buffering:
                buffer = float(layer.params.get("stdio_buffer", STDIO_BUFFER))
                eff_req = np.maximum(req, buffer)
                latency = latency * STDIO_LATENCY_FACTOR
            else:
                eff_req = req
        elif interface is IOInterface.MPIIO and spec.collective is not None:
            eff_req = np.where(
                spec.collective, np.maximum(req, float(COLLECTIVE_BUFFER)), req
            )
        else:
            eff_req = req
        stream_bw = eff_req / (eff_req / cap + latency)

        # Mechanism 2: parallel streams for POSIX/MPI-IO shared files,
        # with diminishing returns from lock/token contention.
        nprocs = np.asarray(spec.nprocs, dtype=np.float64)
        layout_par = np.maximum(np.asarray(spec.file_parallelism, dtype=np.float64), 1.0)
        exponent = (
            self.read_parallel_exponent if direction == "read"
            else self.write_parallel_exponent
        )
        if interface is IOInterface.STDIO:
            streams = np.ones(n, dtype=np.float64)
        else:
            raw_streams = np.where(
                spec.shared, np.minimum(nprocs, layout_par), 1.0
            )
            # Non-shared (file-per-process) records still benefit from
            # layout parallelism within one client, but weakly.
            raw_streams = np.maximum(raw_streams, np.minimum(layout_par, 4.0) ** 0.5)
            streams = raw_streams ** exponent
        bw = stream_bw * streams

        # Production-load ceiling: one file never sustains more than a
        # small fair share of the layer's aggregate peak.
        peak = layer.peak_read_bw if direction == "read" else layer.peak_write_bw
        bw = np.minimum(bw, peak * self.job_share_fraction)

        # Fabric ceiling: a job's traffic cannot exceed its injection /
        # bisection allotment. Node-local layers bypass the fabric.
        if (
            self.network is not None
            and spec.nnodes is not None
            and layer.locality.value != "node-local"
        ):
            bw = np.minimum(bw, self.network.job_cap(spec.nnodes))

        if not self.deterministic:
            # Mechanism 4: contention + lognormal measurement noise.
            frac = self._contention_for(layer).sample(rng, n)
            noise = rng.lognormal(mean=0.0, sigma=caps.sigma, size=n)
            bw = bw * frac * noise
        return np.maximum(bw, self.min_bandwidth)

    def transfer_time(
        self,
        layer: StorageLayer,
        interface: IOInterface,
        direction: str,
        spec: TransferSpec,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Seconds each transfer takes (bytes / delivered bandwidth)."""
        bw = self.sample_bandwidth(layer, interface, direction, spec, rng)
        nbytes = np.asarray(spec.nbytes, dtype=np.float64)
        return np.where(nbytes > 0, nbytes / bw, 0.0)

    # -- scalar convenience ----------------------------------------------------
    def single_transfer_time(
        self,
        layer: StorageLayer,
        interface: IOInterface,
        direction: str,
        *,
        nbytes: int,
        request_size: int,
        nprocs: int = 1,
        file_parallelism: int = 1,
        shared: bool = False,
        collective: bool = False,
        rng: np.random.Generator | None = None,
    ) -> float:
        """One transfer's time; deterministic when no rng is given."""
        spec = TransferSpec(
            nbytes=np.array([nbytes], dtype=np.float64),
            request_size=np.array([request_size], dtype=np.float64),
            nprocs=np.array([nprocs], dtype=np.float64),
            file_parallelism=np.array([file_parallelism], dtype=np.float64),
            shared=np.array([shared]),
            collective=np.array([collective]),
        )
        if rng is None:
            saved = self.deterministic
            self.deterministic = True
            try:
                out = self.transfer_time(
                    layer, interface, direction, spec, np.random.default_rng(0)
                )
            finally:
                self.deterministic = saved
        else:
            out = self.transfer_time(layer, interface, direction, spec, rng)
        return float(out[0])

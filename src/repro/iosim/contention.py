"""Production-load contention model.

The paper stresses (§3.4) that its per-file bandwidths were measured on
"consistently busy supercomputers and their shared-mode I/O subsystems" —
an application never sees the peak. We model that as a multiplicative
*available-fraction* factor per transfer:

* a baseline share drawn from a Beta distribution (most transfers see a
  moderately loaded system; a long tail sees heavy interference — this is
  what produces the wide whiskers in Figures 11/12);
* a diurnal modulation (facilities are busier during working hours);
* burst-buffer layers contend less than center-wide PFS layers because
  namespaces are job-exclusive (§2.1) — only the shared network and, for
  CBB, shared BB nodes remain.

All sampling is vectorized and driven by a caller-supplied Generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ContentionModel:
    """Samples the fraction of nominal bandwidth available to a transfer."""

    #: Beta distribution shape for the available fraction. alpha > beta
    #: skews toward high availability (lightly loaded).
    alpha: float = 4.0
    beta: float = 2.0
    #: Fraction floor — even under the worst interference some share
    #: survives (backpressure, fair-share QoS).
    floor: float = 0.05
    #: Peak-to-trough amplitude of the diurnal cycle (0 disables).
    diurnal_amplitude: float = 0.15

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigurationError("Beta shapes must be positive")
        if not 0 <= self.floor < 1:
            raise ConfigurationError("floor must be in [0, 1)")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")

    def sample(
        self,
        rng: np.random.Generator,
        n: int,
        *,
        time_of_day: np.ndarray | None = None,
    ) -> np.ndarray:
        """Available-bandwidth fractions for ``n`` transfers.

        ``time_of_day`` is seconds-since-midnight per transfer; omitted
        means a uniformly random phase.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        base = rng.beta(self.alpha, self.beta, size=n)
        if self.diurnal_amplitude > 0:
            if time_of_day is None:
                phase = rng.uniform(0, 2 * np.pi, size=n)
            else:
                tod = np.asarray(time_of_day, dtype=np.float64)
                if tod.shape != (n,):
                    raise ValueError(f"time_of_day must have shape ({n},)")
                phase = 2 * np.pi * (tod % 86400.0) / 86400.0
            # Facility load peaks mid-afternoon (~15:00) -> availability
            # dips there: the cosine term hits +1 at phase == 15h.
            peak_phase = 2 * np.pi * 15.0 / 24.0
            modulation = 1.0 - self.diurnal_amplitude * 0.5 * (
                1 + np.cos(phase - peak_phase)
            )
            base = base * modulation
        return np.clip(base, self.floor, 1.0)

    def mean_fraction(self, *, samples: int = 1 << 16) -> float:
        """Expected available fraction under this model.

        Deterministic (fixed-seed quadrature-by-sampling over the Beta ×
        diurnal mixture), so two processes computing it for equal models
        get the exact same float — the what-if engine's cache keys and
        worker-count invariance rely on that. The floor/clip and diurnal
        modulation make a closed form awkward; 2^16 samples put the
        estimator's error well below the scenario deltas it is used to
        compare.
        """
        rng = np.random.default_rng(0x5EEDC047)
        return float(self.sample(rng, samples).mean())

    def crowded(self, factor: float) -> "ContentionModel":
        """This model under ``factor``-times the interfering load.

        Noisy-neighbor scaling: the Beta's pressure shape ``beta`` grows
        with the competing traffic while ``alpha`` (the share the fair
        scheduler defends) stays put, shifting mass toward low available
        fractions. ``factor == 1`` returns an equal model.
        """
        if factor <= 0:
            raise ConfigurationError(f"load factor must be positive, got {factor}")
        return ContentionModel(
            alpha=self.alpha,
            beta=self.beta * factor,
            floor=self.floor,
            diurnal_amplitude=self.diurnal_amplitude,
        )

    @classmethod
    def for_layer_kind(cls, kind_value: str) -> "ContentionModel":
        """Default models per layer kind: PFS layers contend harder."""
        if kind_value == "pfs":
            return cls(alpha=3.0, beta=2.5, floor=0.03, diurnal_amplitude=0.2)
        return cls(alpha=6.0, beta=1.8, floor=0.15, diurnal_amplitude=0.05)

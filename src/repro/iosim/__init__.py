"""Storage-substrate simulators.

These model the behaviour of the systems underneath the measurements:

* :mod:`repro.iosim.gpfs` — GPFS/Spectrum Scale block placement over NSD
  servers (Alpine: 16 MiB blocks, round-robin from a random NSD, §2.1.1).
* :mod:`repro.iosim.lustre` — Lustre striping (stripe size/count/offset),
  MDS namespace partitioning, OST placement (Cori Scratch, §2.1.2).
* :mod:`repro.iosim.nodelocal` — node-local NVMe with job-exclusive
  namespaces (Summit SCNL under Spectral/UnifyFS).
* :mod:`repro.iosim.datawarp` — Cray DataWarp burst-buffer allocations
  with scheduler-driven stage-in/out directives (Cori CBB).
* :mod:`repro.iosim.contention` — production-load contention model.
* :mod:`repro.iosim.perfmodel` — the end-to-end bandwidth model that maps
  (layer, interface, request size, parallelism) to transfer times; the
  POSIX-vs-STDIO contrasts of Figures 11/12 emerge from this model's
  mechanisms (per-stream caps, buffering, latency floors), not from
  hard-coded answers.
* :mod:`repro.iosim.staging` — data movement between layers.
"""

from repro.iosim.gpfs import GpfsFilesystem, GpfsFileLayout
from repro.iosim.lustre import LustreFilesystem, StripeLayout
from repro.iosim.nodelocal import NodeLocalStore
from repro.iosim.datawarp import DataWarpManager, StageDirective
from repro.iosim.contention import ContentionModel
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.iosim.staging import StagePlan, StagingEngine, StagingStyle
from repro.iosim.ior import IorConfig, IorResult, probe_series, run_ior
from repro.iosim.replay import FacilityReplay, LayerDemand
from repro.iosim.netmodel import InterconnectModel, Topology, network_for
from repro.iosim.faults import (
    BB_DRAIN,
    REBUILD_STORM,
    DegradationScenario,
    degrade_layer,
    degrade_machine,
    degraded_perf_model,
)

__all__ = [
    "DegradationScenario",
    "REBUILD_STORM",
    "BB_DRAIN",
    "degrade_layer",
    "degrade_machine",
    "degraded_perf_model",
    "InterconnectModel",
    "Topology",
    "network_for",
    "FacilityReplay",
    "LayerDemand",
    "IorConfig",
    "IorResult",
    "run_ior",
    "probe_series",
    "StagePlan",
    "StagingEngine",
    "StagingStyle",
    "GpfsFilesystem",
    "GpfsFileLayout",
    "LustreFilesystem",
    "StripeLayout",
    "NodeLocalStore",
    "DataWarpManager",
    "StageDirective",
    "ContentionModel",
    "PerfModel",
    "TransferSpec",
]

"""Interconnect model: injection and bisection constraints on I/O.

§2.1 names the fabrics — Summit's Mellanox EDR fat-tree and Cori's Cray
Aries dragonfly — and every byte between compute nodes and either storage
layer's servers crosses them. Two constraints matter for the I/O model:

* **injection**: a job's aggregate I/O cannot exceed the sum of its
  nodes' NIC bandwidths (the reason single-node jobs never see a PFS's
  aggregate peak no matter how wide their files stripe);
* **bisection**: center-wide traffic shares the fabric's global
  bandwidth; a single job under production load gets a modest share.

:class:`InterconnectModel` prices both; the performance model consults it
when the caller provides node counts (the generator does).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import GB


class Topology(enum.Enum):
    FAT_TREE = "fat-tree"
    DRAGONFLY = "dragonfly"


@dataclass(frozen=True)
class InterconnectModel:
    """Fabric constraints for one machine."""

    topology: Topology
    #: Per-node injection bandwidth, bytes/s (NIC-limited).
    injection_per_node: float
    #: Global (bisection) bandwidth of the fabric, bytes/s.
    bisection: float
    #: Share of bisection a single job can claim under production load.
    job_bisection_share: float = 0.10

    def __post_init__(self) -> None:
        if self.injection_per_node <= 0 or self.bisection <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if not 0 < self.job_bisection_share <= 1:
            raise ConfigurationError("job_bisection_share must be in (0, 1]")

    def injection_cap(self, nnodes: np.ndarray) -> np.ndarray:
        """Aggregate injection bandwidth for jobs of the given widths."""
        nnodes = np.asarray(nnodes, dtype=np.float64)
        if (nnodes < 0).any():
            raise ConfigurationError("node counts must be non-negative")
        return np.maximum(nnodes, 1.0) * self.injection_per_node

    def job_cap(self, nnodes: np.ndarray) -> np.ndarray:
        """Binding fabric constraint per job: min(injection, bisection share).

        Fat-trees deliver full bisection (the share is the production-load
        allotment); dragonflies route globally through a tapered global
        link pool, modeled as a lower effective share.
        """
        share = self.job_bisection_share
        if self.topology is Topology.DRAGONFLY:
            share *= 0.6  # tapered global links + adaptive-routing detours
        return np.minimum(self.injection_cap(nnodes), self.bisection * share)


#: Summit: dual-rail Mellanox EDR (2 x 12.5 GB/s per node), full-bisection
#: fat-tree across 4,608 nodes.
SUMMIT_NETWORK = InterconnectModel(
    topology=Topology.FAT_TREE,
    injection_per_node=25 * GB,
    bisection=115_000 * GB / 10,  # ~11.5 TB/s effective global bandwidth
)

#: Cori: Cray Aries dragonfly, ~10 GB/s injection per node, tapered
#: global bandwidth around 5.6 TB/s.
CORI_NETWORK = InterconnectModel(
    topology=Topology.DRAGONFLY,
    injection_per_node=10 * GB,
    bisection=5_600 * GB,
)


def network_for(platform: str) -> InterconnectModel:
    """The fabric model for a platform name."""
    key = platform.lower()
    if key == "summit":
        return SUMMIT_NETWORK
    if key == "cori":
        return CORI_NETWORK
    raise ConfigurationError(f"no network model for platform {platform!r}")

"""Lustre striping and namespace model, as deployed on Cori Scratch.

§2.1.2: *"a file is partitioned into a sequence of equal-size data blocks,
and each data block is distributed across a sequence of OSTs in a
round-robin fashion. The block size, the length of the OST sequence, and
the OST start index are the three configurable parameters in Lustre,
called stripe size, stripe count, and starting OST... On Cori, the default
stripe count is 1, and the stripe size is 1 MB."*

Also modeled: the five MDSes each owning a distinct portion of the global
namespace (top-level directory hash), and OST capacity-aware allocation.
The LUSTRE Darshan module's counters (``STRIPE_SIZE``, ``STRIPE_WIDTH``,
``STRIPE_OFFSET``, ``OSTS``, ``MDTS``) are filled from these layouts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.units import MiB


@dataclass(frozen=True)
class StripeLayout:
    """A file's striping: stripe ``i`` lives on OST ``(start + i) % count_pool``
    within its OST sequence of length ``stripe_count``."""

    stripe_size: int
    stripe_count: int
    start_ost: int
    ost_pool: int  # total OSTs in the file system

    def __post_init__(self) -> None:
        if self.stripe_size <= 0:
            raise SimulationError("stripe_size must be positive")
        if not 1 <= self.stripe_count <= self.ost_pool:
            raise SimulationError(
                f"stripe_count {self.stripe_count} out of range [1, {self.ost_pool}]"
            )
        if not 0 <= self.start_ost < self.ost_pool:
            raise SimulationError(
                f"start_ost {self.start_ost} out of range [0, {self.ost_pool})"
            )

    def ost_of_offset(self, offset: int) -> int:
        """OST index serving a byte offset."""
        if offset < 0:
            raise SimulationError("offset must be non-negative")
        stripe_index = (offset // self.stripe_size) % self.stripe_count
        return (self.start_ost + stripe_index) % self.ost_pool

    def osts(self) -> np.ndarray:
        """The file's OST sequence, in stripe order."""
        return (self.start_ost + np.arange(self.stripe_count)) % self.ost_pool

    def parallelism(self, file_size: int) -> int:
        """Distinct OSTs actually touched by a file of the given size."""
        if file_size <= 0:
            return 0
        stripes = -(-file_size // self.stripe_size)
        return int(min(stripes, self.stripe_count))


class LustreFilesystem:
    """A Lustre deployment: MDS namespace partitioning + OST placement."""

    def __init__(
        self,
        ost_count: int = 248,
        mds_count: int = 5,
        default_stripe_size: int = 1 * MiB,
        default_stripe_count: int = 1,
    ):
        if ost_count <= 0 or mds_count <= 0:
            raise SimulationError("ost_count and mds_count must be positive")
        if not 1 <= default_stripe_count <= ost_count:
            raise SimulationError("default_stripe_count out of range")
        self.ost_count = ost_count
        self.mds_count = mds_count
        self.default_stripe_size = default_stripe_size
        self.default_stripe_count = default_stripe_count
        self._layouts: dict[str, StripeLayout] = {}
        self._dir_stripes: dict[str, tuple[int, int]] = {}

    # -- namespace ---------------------------------------------------------
    def mds_of(self, path: str) -> int:
        """MDS owning a path. Each MDS owns a distinct namespace portion;
        we partition by hash of the top-level project directory so a
        project's metadata load lands on one server, like Cori."""
        parts = [p for p in path.split("/") if p]
        top = parts[0] if parts else ""
        digest = hashlib.md5(top.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "little") % self.mds_count

    # -- striping ----------------------------------------------------------
    def set_directory_stripe(self, directory: str, stripe_size: int, stripe_count: int) -> None:
        """``lfs setstripe`` on a directory: children inherit the layout."""
        if stripe_size <= 0:
            raise SimulationError("stripe_size must be positive")
        if not 1 <= stripe_count <= self.ost_count:
            raise SimulationError(
                f"stripe_count {stripe_count} out of range [1, {self.ost_count}]"
            )
        self._dir_stripes[directory.rstrip("/")] = (stripe_size, stripe_count)

    def _inherited_stripe(self, path: str) -> tuple[int, int]:
        """Longest matching directory stripe setting, else defaults."""
        best: tuple[int, int] | None = None
        best_len = -1
        for directory, setting in self._dir_stripes.items():
            if (path.startswith(directory + "/")) and len(directory) > best_len:
                best, best_len = setting, len(directory)
        if best is None:
            return self.default_stripe_size, self.default_stripe_count
        return best

    def create(
        self,
        path: str,
        rng: np.random.Generator,
        *,
        stripe_size: int | None = None,
        stripe_count: int | None = None,
    ) -> StripeLayout:
        """Create a file; explicit striping overrides directory inheritance."""
        if path in self._layouts:
            raise SimulationError(f"{path!r} already exists")
        inherited_size, inherited_count = self._inherited_stripe(path)
        layout = StripeLayout(
            stripe_size=stripe_size if stripe_size is not None else inherited_size,
            stripe_count=stripe_count if stripe_count is not None else inherited_count,
            start_ost=int(rng.integers(0, self.ost_count)),
            ost_pool=self.ost_count,
        )
        self._layouts[path] = layout
        return layout

    def layout(self, path: str) -> StripeLayout:
        try:
            return self._layouts[path]
        except KeyError:
            raise SimulationError(f"no such file {path!r}") from None

    def remove(self, path: str) -> None:
        if path not in self._layouts:
            raise SimulationError(f"no such file {path!r}")
        del self._layouts[path]

    def nfiles(self) -> int:
        return len(self._layouts)

    # -- load queries --------------------------------------------------------
    def ost_usage(self) -> np.ndarray:
        """Number of files touching each OST (stripe membership count)."""
        usage = np.zeros(self.ost_count, dtype=np.int64)
        for layout in self._layouts.values():
            usage[layout.osts()] += 1
        return usage

    def mds_usage(self, paths: list[str]) -> np.ndarray:
        """File count per MDS for a path population — the imbalance
        Shantharam et al. observed shows up here for skewed projects."""
        usage = np.zeros(self.mds_count, dtype=np.int64)
        for p in paths:
            usage[self.mds_of(p)] += 1
        return usage

    def file_parallelism(self, path: str, file_size: int) -> int:
        return self.layout(path).parallelism(file_size)

"""Facility replay: aggregate layer demand over time from a store.

The paper's findings are phrased job-by-job; facility operators care
about the *aggregate* view — how much bandwidth demand each storage layer
sees over the year, how close to peak the layers run, and what staging
would do to that picture. This engine replays a store's per-file I/O as
load on its platform's layers:

* each file record contributes its bytes over its job's execution window
  (uniformly — Darshan without DXT gives no finer placement), split by
  layer and direction;
* demand is accumulated into a time-binned series per (layer, direction)
  via a difference-array sweep (O(files + bins), no per-bin loops);
* utilization compares demand against the layer's peak bandwidth.

This is the instrument used by the capacity-planning example and the
saturation analysis in the bench suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_CODES


@dataclass(frozen=True)
class LayerDemand:
    """Bandwidth demand series for one (layer, direction)."""

    layer: str
    direction: str
    bin_seconds: float
    #: Mean demanded bandwidth per bin, bytes/second (full-year scale).
    series: np.ndarray
    peak_bandwidth: float

    def utilization(self) -> np.ndarray:
        """Demand over layer peak, per bin."""
        return self.series / self.peak_bandwidth

    def peak_utilization(self) -> float:
        return float(self.utilization().max()) if len(self.series) else 0.0

    def mean_utilization(self) -> float:
        return float(self.utilization().mean()) if len(self.series) else 0.0

    def saturated_fraction(self, threshold: float = 0.8) -> float:
        """Fraction of time bins demanding more than ``threshold`` of peak."""
        if not len(self.series):
            return 0.0
        return float((self.utilization() > threshold).mean())


class FacilityReplay:
    """Replays a store's I/O as time-binned layer demand."""

    def __init__(
        self,
        store: RecordStore,
        machine: Machine,
        *,
        bin_seconds: float = 3600.0,
    ):
        if bin_seconds <= 0:
            raise AnalysisError("bin_seconds must be positive")
        self.store = store
        self.machine = machine
        self.bin_seconds = bin_seconds
        self._demands: dict[tuple[str, str], LayerDemand] | None = None

    # ------------------------------------------------------------------
    def demands(self) -> dict[tuple[str, str], LayerDemand]:
        """Demand series per (layer key, direction). Computed once."""
        if self._demands is None:
            self._demands = self._compute()
        return self._demands

    def demand(self, layer: str, direction: str) -> LayerDemand:
        try:
            return self.demands()[(layer, direction)]
        except KeyError:
            raise AnalysisError(
                f"no demand series for ({layer!r}, {direction!r})"
            ) from None

    def _compute(self) -> dict[tuple[str, str], LayerDemand]:
        store = self.store
        jobs = store.jobs
        if not len(jobs):
            raise AnalysisError("store has no jobs")
        files = store.files
        unique = files[files["interface"] != int(IOInterface.MPIIO)]

        # Job execution windows, indexed by job id.
        start_by_job = dict(
            zip(jobs["job_id"].tolist(), jobs["start_time"].tolist())
        )
        runtime_by_job = dict(
            zip(jobs["job_id"].tolist(), jobs["runtime"].tolist())
        )
        starts = np.array(
            [start_by_job[int(j)] for j in unique["job_id"]], dtype=np.float64
        )
        runtimes = np.maximum(
            np.array(
                [runtime_by_job[int(j)] for j in unique["job_id"]],
                dtype=np.float64,
            ),
            1.0,
        )
        horizon = float((jobs["start_time"] + jobs["runtime"]).max())
        nbins = max(int(np.ceil(horizon / self.bin_seconds)), 1)

        out: dict[tuple[str, str], LayerDemand] = {}
        for layer_key, code in LAYER_CODES.items():
            if layer_key == "other":
                continue
            layer = self.machine.layers[layer_key]
            mask = unique["layer"] == code
            for direction, col, peak in (
                ("read", "bytes_read", layer.peak_read_bw),
                ("write", "bytes_written", layer.peak_write_bw),
            ):
                series = self._accumulate(
                    starts[mask],
                    runtimes[mask],
                    unique[col][mask].astype(np.float64),
                    nbins,
                )
                out[(layer_key, direction)] = LayerDemand(
                    layer=layer_key,
                    direction=direction,
                    bin_seconds=self.bin_seconds,
                    series=series / store.scale,
                    peak_bandwidth=peak,
                )
        return out

    def _accumulate(
        self,
        starts: np.ndarray,
        durations: np.ndarray,
        nbytes: np.ndarray,
        nbins: int,
    ) -> np.ndarray:
        """Spread each transfer's bytes over its window (difference array).

        A transfer of B bytes spanning bins [first, last] contributes
        B / (last - first + 1) bytes to each spanned bin; the series is
        then divided by the bin width to yield mean bandwidth per bin.
        Byte totals are conserved exactly (tested); sub-bin placement is
        uniform, which is the best Darshan-without-DXT data supports.
        """
        active = nbytes > 0
        if not active.any():
            return np.zeros(nbins, dtype=np.float64)
        starts = starts[active]
        durations = durations[active]
        nbytes = nbytes[active]
        first = np.clip(
            (starts / self.bin_seconds).astype(np.int64), 0, nbins - 1
        )
        last = np.clip(
            ((starts + durations) / self.bin_seconds).astype(np.int64),
            first,
            nbins - 1,
        )
        per_bin = nbytes / (last - first + 1)
        diff = np.zeros(nbins + 1, dtype=np.float64)
        np.add.at(diff, first, per_bin)
        np.add.at(diff, last + 1, -per_bin)
        return np.cumsum(diff[:-1]) / self.bin_seconds

    # ------------------------------------------------------------------
    def summary_rows(self) -> list[list[str]]:
        rows = []
        for (layer, direction), demand in sorted(self.demands().items()):
            rows.append(
                [
                    self.store.platform,
                    layer,
                    direction,
                    f"{demand.mean_utilization() * 100:.2f}%",
                    f"{demand.peak_utilization() * 100:.2f}%",
                    f"{demand.saturated_fraction() * 100:.2f}%",
                ]
            )
        return rows

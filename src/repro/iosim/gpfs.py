"""GPFS (IBM Spectrum Scale) block placement, as deployed on Alpine.

§2.1.1: *"GPFS first partitions the file data into a sequence of equal-size
data blocks (GPFS block) and then distributes the block sequence across an
NSD sequence in a round-robin way. The NSD sequence starts from a randomly
chosen NSD server and may span over the entire server pool... the GPFS
block size is configured as 16 MB."*

The simulator implements exactly that: deterministic round-robin placement
from a per-file random start, plus the queries the performance model needs
(how many distinct NSDs serve a file or a byte range — the file's I/O
parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.units import MiB


@dataclass(frozen=True)
class GpfsFileLayout:
    """Placement of one file: blocks ``i`` live on NSD ``(start + i) % n``."""

    file_size: int
    block_size: int
    nsd_count: int
    start_nsd: int

    def __post_init__(self) -> None:
        if self.file_size < 0:
            raise SimulationError("file_size must be non-negative")
        if self.block_size <= 0 or self.nsd_count <= 0:
            raise SimulationError("block_size and nsd_count must be positive")
        if not 0 <= self.start_nsd < self.nsd_count:
            raise SimulationError(
                f"start_nsd {self.start_nsd} out of range [0, {self.nsd_count})"
            )

    @property
    def nblocks(self) -> int:
        """Number of GPFS blocks the file occupies (0 for an empty file)."""
        return -(-self.file_size // self.block_size) if self.file_size else 0

    def nsd_of_block(self, block: int) -> int:
        """NSD server index holding a given block."""
        if not 0 <= block < max(self.nblocks, 1):
            raise SimulationError(f"block {block} out of range for {self.nblocks}-block file")
        return (self.start_nsd + block) % self.nsd_count

    def nsds_for_range(self, offset: int, length: int) -> np.ndarray:
        """Distinct NSD indices serving a byte range, ascending."""
        if offset < 0 or length < 0:
            raise SimulationError("offset/length must be non-negative")
        if length == 0 or self.file_size == 0:
            return np.empty(0, dtype=np.int64)
        end = min(offset + length, self.file_size)
        if offset >= end:
            return np.empty(0, dtype=np.int64)
        first = offset // self.block_size
        last = (end - 1) // self.block_size
        nblocks = last - first + 1
        if nblocks >= self.nsd_count:
            return np.arange(self.nsd_count, dtype=np.int64)
        blocks = np.arange(first, last + 1, dtype=np.int64)
        return np.unique((self.start_nsd + blocks) % self.nsd_count)

    def parallelism(self) -> int:
        """Distinct NSDs serving the whole file — its server-side parallelism."""
        return min(self.nblocks, self.nsd_count) if self.nblocks else 0

    def blocks_per_nsd(self) -> np.ndarray:
        """Block count per NSD, shape ``(nsd_count,)`` — for balance checks."""
        counts = np.zeros(self.nsd_count, dtype=np.int64)
        nblocks = self.nblocks
        if nblocks == 0:
            return counts
        full_rounds, rem = divmod(nblocks, self.nsd_count)
        counts += full_rounds
        if rem:
            tail = (self.start_nsd + np.arange(rem)) % self.nsd_count
            counts[tail] += 1
        return counts


class GpfsFilesystem:
    """A GPFS deployment: places files and answers layout queries."""

    def __init__(self, nsd_count: int, block_size: int = 16 * MiB):
        if nsd_count <= 0:
            raise SimulationError("nsd_count must be positive")
        if block_size <= 0:
            raise SimulationError("block_size must be positive")
        self.nsd_count = nsd_count
        self.block_size = block_size
        self._layouts: dict[str, GpfsFileLayout] = {}

    def create(self, path: str, file_size: int, rng: np.random.Generator) -> GpfsFileLayout:
        """Place a file; the NSD sequence starts at a random server."""
        if path in self._layouts:
            raise SimulationError(f"{path!r} already exists")
        layout = GpfsFileLayout(
            file_size=file_size,
            block_size=self.block_size,
            nsd_count=self.nsd_count,
            start_nsd=int(rng.integers(0, self.nsd_count)),
        )
        self._layouts[path] = layout
        return layout

    def layout(self, path: str) -> GpfsFileLayout:
        try:
            return self._layouts[path]
        except KeyError:
            raise SimulationError(f"no such file {path!r}") from None

    def remove(self, path: str) -> None:
        if path not in self._layouts:
            raise SimulationError(f"no such file {path!r}")
        del self._layouts[path]

    def nfiles(self) -> int:
        return len(self._layouts)

    def server_load(self) -> np.ndarray:
        """Aggregate block count per NSD across all files."""
        load = np.zeros(self.nsd_count, dtype=np.int64)
        for layout in self._layouts.values():
            load += layout.blocks_per_nsd()
        return load

    def file_parallelism(self, file_size: int) -> int:
        """Parallelism a file of this size gets, independent of placement."""
        nblocks = -(-file_size // self.block_size) if file_size else 0
        return min(nblocks, self.nsd_count)

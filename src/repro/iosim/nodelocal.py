"""Node-local NVMe in-system storage (Summit SCNL).

§2.1.1: SCNL is built from one NVMe device per compute node. Software like
Spectral and ORNL's UnifyFS presents the distributed devices to a job as a
*job-exclusive namespace for the job's lifetime*; files not staged out are
gone when the job exits. That lifecycle is why Summit shows almost no jobs
touching SCNL exclusively (Table 5): the runtime stages data in/out under
the covers, leaving only temporaries on the layer.

The simulator tracks per-node capacity, job namespaces, and file placement
(a file written by rank r lands on r's node — node-local means no remote
data path), and reports the parallelism queries the performance model
needs (a job's SCNL bandwidth scales with its node count).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class _Namespace:
    """One job's private view of the node-local layer."""

    job_id: int
    nodes: tuple[int, ...]
    files: dict[str, tuple[int, int]] = field(default_factory=dict)  # path -> (node, size)
    closed: bool = False


class NodeLocalStore:
    """Per-node NVMe devices with job-exclusive namespaces."""

    def __init__(self, node_count: int, per_node_capacity: int):
        if node_count <= 0:
            raise SimulationError("node_count must be positive")
        if per_node_capacity <= 0:
            raise SimulationError("per_node_capacity must be positive")
        self.node_count = node_count
        self.per_node_capacity = per_node_capacity
        self._used = [0] * node_count
        self._namespaces: dict[int, _Namespace] = {}

    # -- namespace lifecycle -------------------------------------------------
    def create_namespace(self, job_id: int, nodes: list[int]) -> None:
        """Mount the job-exclusive namespace on the job's nodes."""
        if job_id in self._namespaces:
            raise SimulationError(f"job {job_id} already has a namespace")
        if not nodes:
            raise SimulationError("a namespace needs at least one node")
        for n in nodes:
            if not 0 <= n < self.node_count:
                raise SimulationError(f"node {n} out of range [0, {self.node_count})")
        if len(set(nodes)) != len(nodes):
            raise SimulationError("duplicate nodes in namespace")
        self._namespaces[job_id] = _Namespace(job_id, tuple(nodes))

    def destroy_namespace(self, job_id: int) -> list[str]:
        """Unmount at job exit; returns the paths of files that vanished
        (anything not staged out first — the UnifyFS lifecycle)."""
        ns = self._namespace(job_id)
        lost = sorted(ns.files)
        for node, size in ns.files.values():
            self._used[node] -= size
        ns.files.clear()
        ns.closed = True
        del self._namespaces[job_id]
        return lost

    def _namespace(self, job_id: int) -> _Namespace:
        try:
            return self._namespaces[job_id]
        except KeyError:
            raise SimulationError(f"job {job_id} has no namespace") from None

    # -- file operations -------------------------------------------------------
    def write(self, job_id: int, path: str, size: int, rank: int, nprocs: int) -> int:
        """Write a file from a rank; it lands on that rank's node.

        Returns the node index used. Ranks map to nodes round-robin
        (block distribution differs per launcher; round-robin keeps the
        per-node load balanced, which is the property that matters here).
        """
        ns = self._namespace(job_id)
        if size < 0:
            raise SimulationError("size must be non-negative")
        if not 0 <= rank < nprocs:
            raise SimulationError(f"rank {rank} out of range [0, {nprocs})")
        node = ns.nodes[rank % len(ns.nodes)]
        if path in ns.files:
            old_node, old_size = ns.files[path]
            self._used[old_node] -= old_size
        if self._used[node] + size > self.per_node_capacity:
            raise SimulationError(
                f"node {node} over capacity: {self._used[node] + size} "
                f"> {self.per_node_capacity}"
            )
        self._used[node] += size
        ns.files[path] = (node, size)
        return node

    def read(self, job_id: int, path: str) -> int:
        """Read a file; returns its size. Node-local reads never cross nodes."""
        ns = self._namespace(job_id)
        try:
            return ns.files[path][1]
        except KeyError:
            raise SimulationError(f"job {job_id}: no such file {path!r}") from None

    def remove(self, job_id: int, path: str) -> None:
        ns = self._namespace(job_id)
        if path not in ns.files:
            raise SimulationError(f"job {job_id}: no such file {path!r}")
        node, size = ns.files.pop(path)
        self._used[node] -= size

    def files(self, job_id: int) -> dict[str, int]:
        """path → size for a job's namespace."""
        ns = self._namespace(job_id)
        return {p: s for p, (_, s) in ns.files.items()}

    # -- capacity / parallelism -------------------------------------------------
    def node_used(self, node: int) -> int:
        if not 0 <= node < self.node_count:
            raise SimulationError(f"node {node} out of range")
        return self._used[node]

    def job_parallelism(self, job_id: int) -> int:
        """SCNL bandwidth scales with the job's node count (one NVMe each)."""
        return len(self._namespace(job_id).nodes)

    def total_used(self) -> int:
        return sum(self._used)

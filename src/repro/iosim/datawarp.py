"""Cray DataWarp burst-buffer model (Cori CBB).

§2.1.2: CBB is flash attached to dedicated service (burst-buffer) nodes.
DataWarp gives each job an exclusively-accessed namespace sized by a job-
script directive; allocations are carved in fixed *granularity* units and
striped across BB nodes, so a bigger request buys more nodes and therefore
more bandwidth. The scheduler integration executes ``stage_in`` before the
job starts and ``stage_out`` after it exits — which is why 14.38% of Cori
jobs touch CBB exclusively (Table 5): their PFS traffic happened outside
the job's Darshan window.

The manager tracks pool capacity, allocation lifecycle, staged files, and
answers the parallelism query (#BB nodes of an allocation) for the
performance model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.units import GB


class StageKind(enum.Enum):
    IN = "stage_in"
    OUT = "stage_out"


@dataclass(frozen=True)
class StageDirective:
    """A #DW stage_in/stage_out job-script directive."""

    kind: StageKind
    #: PFS-side path (source for IN, destination for OUT).
    pfs_path: str
    #: BB-side path within the job's namespace.
    bb_path: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError("staged size must be non-negative")


@dataclass
class Allocation:
    """One job's DataWarp allocation."""

    job_id: int
    requested_bytes: int
    granted_bytes: int
    bb_nodes: int
    files: dict[str, int] = field(default_factory=dict)
    staged_in: list[StageDirective] = field(default_factory=list)
    staged_out: list[StageDirective] = field(default_factory=list)
    active: bool = True

    def used(self) -> int:
        return sum(self.files.values())


class DataWarpManager:
    """The DataWarp pool: grants allocations, executes staging directives."""

    def __init__(
        self,
        pool_bytes: int,
        bb_node_count: int,
        granularity: int = 20 * GB,
    ):
        if pool_bytes <= 0 or bb_node_count <= 0 or granularity <= 0:
            raise SimulationError("pool, node count, and granularity must be positive")
        self.pool_bytes = pool_bytes
        self.bb_node_count = bb_node_count
        self.granularity = granularity
        self._free = pool_bytes
        self._allocations: dict[int, Allocation] = {}

    # -- allocation lifecycle ---------------------------------------------------
    def allocate(self, job_id: int, capacity_request: int) -> Allocation:
        """Grant an allocation rounded up to granularity units.

        The allocation is striped over ``min(units, bb_node_count)`` BB
        nodes — DataWarp's bandwidth-scales-with-capacity behaviour.
        """
        if job_id in self._allocations:
            raise SimulationError(f"job {job_id} already holds an allocation")
        if capacity_request <= 0:
            raise SimulationError("capacity request must be positive")
        units = -(-capacity_request // self.granularity)
        granted = units * self.granularity
        if granted > self._free:
            raise SimulationError(
                f"pool exhausted: need {granted}, free {self._free}"
            )
        self._free -= granted
        alloc = Allocation(
            job_id=job_id,
            requested_bytes=capacity_request,
            granted_bytes=granted,
            bb_nodes=min(units, self.bb_node_count),
        )
        self._allocations[job_id] = alloc
        return alloc

    def release(self, job_id: int) -> None:
        """Tear down at job end (after stage_out directives ran)."""
        alloc = self._get(job_id)
        self._free += alloc.granted_bytes
        alloc.active = False
        del self._allocations[job_id]

    def _get(self, job_id: int) -> Allocation:
        try:
            return self._allocations[job_id]
        except KeyError:
            raise SimulationError(f"job {job_id} holds no allocation") from None

    # -- file + staging operations ---------------------------------------------
    def write(self, job_id: int, bb_path: str, size: int) -> None:
        alloc = self._get(job_id)
        if size < 0:
            raise SimulationError("size must be non-negative")
        old = alloc.files.get(bb_path, 0)
        if alloc.used() - old + size > alloc.granted_bytes:
            raise SimulationError(
                f"job {job_id}: allocation overflow "
                f"({alloc.used() - old + size} > {alloc.granted_bytes})"
            )
        alloc.files[bb_path] = size

    def read(self, job_id: int, bb_path: str) -> int:
        alloc = self._get(job_id)
        try:
            return alloc.files[bb_path]
        except KeyError:
            raise SimulationError(f"job {job_id}: no such BB file {bb_path!r}") from None

    def stage_in(self, job_id: int, directive: StageDirective) -> None:
        """Execute a stage_in before job start: PFS file appears on the BB."""
        if directive.kind is not StageKind.IN:
            raise SimulationError("stage_in needs an IN directive")
        alloc = self._get(job_id)
        self.write(job_id, directive.bb_path, directive.size)
        alloc.staged_in.append(directive)

    def stage_out(self, job_id: int, directive: StageDirective) -> int:
        """Execute a stage_out after job exit: BB file is copied to the PFS.

        Returns the number of bytes moved.
        """
        if directive.kind is not StageKind.OUT:
            raise SimulationError("stage_out needs an OUT directive")
        alloc = self._get(job_id)
        if directive.bb_path not in alloc.files:
            raise SimulationError(
                f"job {job_id}: stage_out of missing file {directive.bb_path!r}"
            )
        alloc.staged_out.append(directive)
        return alloc.files[directive.bb_path]

    # -- queries ------------------------------------------------------------------
    def free_bytes(self) -> int:
        return self._free

    def allocation(self, job_id: int) -> Allocation:
        return self._get(job_id)

    def job_parallelism(self, job_id: int) -> int:
        """BB-node count of the job's allocation (its bandwidth share)."""
        return self._get(job_id).bb_nodes

    def active_jobs(self) -> list[int]:
        return sorted(self._allocations)

"""Reconstructing per-file transfer descriptions from stored columns.

The store keeps what Darshan keeps — bytes, op counts, rank, process
count — not the layout attributes the perf model consumed when the times
were minted (stripe counts, BB allocation width, collective flags). This
module re-derives a :class:`~repro.iosim.perfmodel.TransferSpec` from
the stored columns by mirroring the generator's *rules*
(:meth:`WorkloadGenerator._file_parallelism`), replacing its random
draws with their expected values:

* Lustre tuned striping (40% of >10 GB files at 2^U(1,6) stripes)
  becomes the expected stripe count for every >10 GB file;
* a Cori job's DataWarp allocation width (not stored) is proxied by its
  node count, which the generator's ``bb_capacity`` sampling tracks.

The what-if engine only ever uses these reconstructions in *ratios* —
the same spec feeds the baseline and the scenario model — so the
approximations cancel wherever the scenario leaves a mechanism alone,
and bias only the mechanisms a scenario deliberately changes.
"""

from __future__ import annotations

import numpy as np

from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.units import GB, MiB

#: Expected Lustre stripe count for a >10 GB Cori file: 60% keep the
#: default single stripe, 40% were tuned to 2^U{1..5} stripes
#: (mean 12.4), mirroring WorkloadGenerator._file_parallelism.
LUSTRE_TUNED_STRIPES = 0.6 * 1.0 + 0.4 * np.mean([2.0, 4.0, 8.0, 16.0, 32.0])

#: Size above which Cori users bother to tune striping (§2.1.2).
LUSTRE_TUNE_THRESHOLD = 10 * GB

#: UnifyFS lamination chunk on Summit's node-local layer.
SCNL_SEGMENT = 128 * MiB

#: DataWarp substripe granularity on Cori's burst buffer.
CBB_SUBSTRIPE = 1024 * MiB


def layout_parallelism(
    platform: str,
    layer_code: int,
    machine: Machine,
    sizes: np.ndarray,
    nnodes: np.ndarray,
    *,
    factor: float = 1.0,
) -> np.ndarray:
    """Reconstructed file-layout parallelism for rows on one layer.

    ``factor`` rescales the layout ("double the stripe count") before
    the physical ceilings (server pool, allocation width) are applied.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    if layer_code == LAYER_PFS:
        if platform == "summit":
            block = float(machine.pfs.params.get("block_size", 16 * MiB))
            par = np.ceil(sizes / block)
        else:
            par = np.where(
                sizes > LUSTRE_TUNE_THRESHOLD, LUSTRE_TUNED_STRIPES, 1.0
            )
        return np.clip(par * factor, 1.0, machine.pfs.server_count)
    if layer_code == LAYER_INSYSTEM:
        if platform == "summit":
            segments = np.maximum(np.ceil(sizes / SCNL_SEGMENT), 1.0)
            width = nnodes
        else:
            segments = np.maximum(np.ceil(sizes / CBB_SUBSTRIPE), 1.0)
            # Allocation width is not stored; the job's node count is
            # the generator's own scale proxy for it.
            width = nnodes
        par = np.minimum(np.maximum(width, 1.0), segments)
        return np.clip(
            par * factor, 1.0, machine.in_system.server_count
        )
    # "other" layers carry no layout model; a single stream.
    return np.full(len(sizes), max(factor, 1.0))


def nnodes_by_row(files: np.ndarray, jobs: np.ndarray) -> np.ndarray:
    """Each file row's job node count, joined from the job table.

    Rows whose job id is absent from the table (hand-built stores)
    default to one node.
    """
    out = np.ones(len(files), dtype=np.float64)
    if not len(jobs) or not len(files):
        return out
    order = np.argsort(jobs["job_id"], kind="stable")
    ids = jobs["job_id"][order]
    pos = np.searchsorted(ids, files["job_id"])
    pos = np.clip(pos, 0, len(ids) - 1)
    found = ids[pos] == files["job_id"]
    out[found] = jobs["nnodes"][order][pos[found]].astype(np.float64)
    return out


def build_spec(
    rows: np.ndarray,
    nnodes: np.ndarray,
    parallelism: np.ndarray,
    direction: str,
):
    """A :class:`TransferSpec` for one direction over selected rows.

    The collective flag is not stored; shared MPI-IO files are treated
    as collective (the generator's MPI-IO groups are), which cancels in
    base/scenario ratios either way.
    """
    from repro.iosim.perfmodel import TransferSpec

    bytes_col = "bytes_read" if direction == "read" else "bytes_written"
    ops_col = "reads" if direction == "read" else "writes"
    nbytes = rows[bytes_col].astype(np.float64)
    ops = np.maximum(rows[ops_col].astype(np.float64), 1.0)
    shared = rows["rank"] == -1
    collective = shared & (rows["interface"] == int(IOInterface.MPIIO))
    return TransferSpec(
        nbytes=nbytes,
        request_size=np.maximum(nbytes / ops, 1.0),
        nprocs=rows["nprocs"].astype(np.float64),
        file_parallelism=np.asarray(parallelism, dtype=np.float64),
        shared=shared,
        collective=collective,
        nnodes=np.asarray(nnodes, dtype=np.float64),
    )

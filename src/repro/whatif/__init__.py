"""What-if scenario sweeps: digital-twin queries over the perf model.

The paper characterizes how the *deployed* subsystems behaved under
production load; an operator's next question is counterfactual — what if
the stripe count doubled, the checkpoints moved to the burst buffer, an
OSS enclosure died mid-rebuild, the machine got twice as crowded? This
package answers those as first-class queries over a stored population:

* :mod:`repro.whatif.scenarios` — the named, parameterized scenario
  catalog, each resolving to a picklable :class:`ScenarioPlan`;
* :mod:`repro.whatif.transfers` — reconstructing per-file transfer
  specs from stored columns (mirroring the generator's layout rules);
* :mod:`repro.whatif.engine` — ratio-based counterfactual re-timing,
  delta reports, and pool-fanned sweeps.

Every scenario is also registered in the serve registry as
``whatif_<name>`` (kind ``table``), so ``repro analyze``, ``repro
serve``/``query``, and the engine's LRU cache — keyed on (query, params,
store generation) — treat what-ifs exactly like the paper's exhibits.
"""

from repro.whatif.engine import (
    PointMetrics,
    WhatIfReport,
    compute_point,
    materialize,
    point_metrics,
    replay_files,
    sweep,
)
from repro.whatif.scenarios import (
    ParamSpec,
    Scenario,
    ScenarioPlan,
    get_scenario,
    scenario_catalog,
)

__all__ = [
    "ParamSpec",
    "PointMetrics",
    "Scenario",
    "ScenarioPlan",
    "WhatIfReport",
    "compute_point",
    "get_scenario",
    "materialize",
    "point_metrics",
    "replay_files",
    "scenario_catalog",
    "sweep",
]

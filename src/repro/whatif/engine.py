"""The what-if replay engine: counterfactual time scaling over a store.

The digital-twin question is "what would *this* year's population have
measured under a reconfigured subsystem?". The engine answers it without
re-rolling any randomness: each stored time already embeds a realized
contention/noise draw (its production-load measurement), so a scenario
re-times a row by **ratio**, not by regeneration::

    time' = time x (bw_base / bw_scenario) x (E[frac_base] / E[frac_scn])

* ``bw_base / bw_scenario`` — both sides of the *deterministic*
  mechanism model (:class:`~repro.iosim.perfmodel.PerfModel` with
  sampling off) over the same reconstructed transfer spec
  (:mod:`repro.whatif.transfers`). Caps, parallelism exponents,
  request-size efficiency, fair-share and fabric ceilings all
  participate; the stored noise realization rides along untouched.
* ``E[frac]`` — the contention models' expected available fractions
  (:meth:`ContentionModel.mean_fraction`), shifting times by how much
  *more or less crowded* the scenario is in expectation while keeping
  each row's individual draw.

Both factors are **exactly 1.0** when a scenario leaves the relevant
mechanism alone — the identical spec through the identical model divides
to 1.0 bit-for-bit — which is what makes the identity scenario's output
bit-identical to the baseline (the differential suite's gate) and lets
every scenario share one code path with no special cases.

Sweeps fan points across the process pool
(:func:`repro.parallel.run_sharded`): the file table travels to workers
through the zero-copy fabric (an ``mmap`` of the store's raw layout, or
one shared-memory copy), each sweep point is computed wholly inside one
worker, and materialized scenario stores come back as shared-memory
:class:`~repro.fabric.StoreRef` headers. Point independence plus the
deterministic math make results worker-count-invariant byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Mapping, Sequence

import numpy as np

from repro import fabric
from repro.errors import WhatIfError
from repro.iosim.contention import ContentionModel
from repro.iosim.replay import FacilityReplay
from repro.obs.tracer import trace_span
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM, LAYER_NAMES, LAYER_PFS
from repro.whatif.scenarios import ScenarioPlan, get_scenario
from repro.whatif.transfers import build_spec, layout_parallelism, nnodes_by_row

#: Unused under deterministic models; sample_bandwidth's signature wants one.
_NULL_RNG = np.random.default_rng(0)


@lru_cache(maxsize=64)
def _mean_fraction(model: ContentionModel) -> float:
    """Cached expectation: models are frozen dataclasses, hence hashable."""
    return model.mean_fraction()


def _contention_ratio(plan: ScenarioPlan, base_kind: str, scn_kind: str) -> float:
    """E[frac_base] / E[frac_scenario] for one layer-kind pairing.

    Guarded to exactly 1.0 for equal models on the same kind, so an
    untouched layer's times are multiplied by the float 1.0 (a bitwise
    no-op), never by an estimate of 1.
    """
    base = plan.contention_model(plan.base_perf, base_kind)
    scn = plan.contention_model(plan.perf, scn_kind)
    if base_kind == scn_kind and base == scn:
        return 1.0
    return _mean_fraction(base) / _mean_fraction(scn)


# -- replay ------------------------------------------------------------------
def replay_files(
    files: np.ndarray,
    jobs: np.ndarray,
    plan: ScenarioPlan,
    platform: str,
) -> tuple[np.ndarray, int]:
    """A scenario's file table: stored rows re-timed under the plan.

    Returns ``(new_files, moved)`` where ``moved`` counts rows the plan
    relocated to the in-system layer. The input table is never mutated.
    """
    out = files.copy()
    n = len(files)
    if n == 0:
        return out, 0
    nnodes = nnodes_by_row(files, jobs)
    sizes = (files["bytes_read"] + files["bytes_written"]).astype(np.float64)
    orig_layer = files["layer"]
    new_layer = orig_layer.copy()
    moved = 0
    if plan.relocate_min_bytes is not None:
        move = (
            (orig_layer == LAYER_PFS)
            & (files["bytes_read"] == 0)
            & (files["bytes_written"] >= plan.relocate_min_bytes)
        )
        moved = int(move.sum())
        new_layer[move] = LAYER_INSYSTEM
        out["layer"] = new_layer

    # Rows group by (origin layer, destination layer): origin drives the
    # baseline mechanism value, destination the scenario's.
    pair = orig_layer.astype(np.int32) * 256 + new_layer
    for pk in np.unique(pair):
        oc, nc = int(pk) // 256, int(pk) % 256
        if oc not in (LAYER_PFS, LAYER_INSYSTEM):
            continue  # unmounted/"other" rows carry no layer model
        base_layer = plan.base_machine.layers[LAYER_NAMES[oc]]
        scn_layer = plan.machine.layers[LAYER_NAMES[nc]]
        gmask = pair == pk
        base_par = layout_parallelism(
            platform, oc, plan.base_machine, sizes[gmask], nnodes[gmask]
        )
        scn_par = layout_parallelism(
            platform, nc, plan.machine, sizes[gmask], nnodes[gmask],
            factor=plan.parallelism_factor(LAYER_NAMES[nc]),
        )
        cratio = _contention_ratio(
            plan, base_layer.kind.value, scn_layer.kind.value
        )
        gidx = np.flatnonzero(gmask)
        for iface_code in np.unique(files["interface"][gmask]):
            interface = IOInterface(int(iface_code))
            local = files["interface"][gidx] == iface_code
            idx = gidx[local]
            rows = files[idx]
            rn = nnodes[idx]
            for direction, time_col in (
                ("read", "read_time"), ("write", "write_time")
            ):
                spec = build_spec(rows, rn, base_par[local], direction)
                bw_base = plan.base_perf.sample_bandwidth(
                    base_layer, interface, direction, spec, _NULL_RNG
                )
                bw_scn = plan.perf.sample_bandwidth(
                    scn_layer, interface, direction,
                    replace(spec, file_parallelism=scn_par[local]),
                    _NULL_RNG,
                )
                out[time_col][idx] = (
                    files[time_col][idx] * (bw_base / bw_scn) * cratio
                )
        # Metadata follows the destination layer's latency floor.
        out["meta_time"][gidx] = files["meta_time"][gidx] * (
            scn_layer.base_latency / base_layer.base_latency
        )
    return out, moved


# -- metrics -----------------------------------------------------------------
@dataclass(frozen=True)
class PointMetrics:
    """One (layer, direction)'s aggregate view of a file table."""

    layer: str
    direction: str
    #: Unique-accounting rows (non-MPI-IO) that moved bytes this way.
    files: int
    #: Total modeled transfer seconds over those rows.
    seconds: float
    #: Median delivered per-file bandwidth, bytes/s.
    median_bw: float
    #: Peak layer utilization from the facility replay.
    peak_util: float


class _StoreView:
    """The minimal store shape FacilityReplay needs, without a copy."""

    def __init__(self, files, jobs, scale, platform):
        self.files = files
        self.jobs = jobs
        self.scale = scale
        self.platform = platform


def point_metrics(
    files: np.ndarray,
    jobs: np.ndarray,
    machine: Machine,
    scale: float,
    platform: str,
) -> tuple[PointMetrics, ...]:
    """Per-(layer, direction) metrics of one file table on one machine.

    Utilization comes from a :class:`FacilityReplay` against ``machine``
    — a degraded machine's shrunken peaks raise utilization even where
    demand is unchanged, which is the fault scenarios' operator view.
    """
    unique = files["interface"] != int(IOInterface.MPIIO)
    replay = (
        FacilityReplay(_StoreView(files, jobs, scale, platform), machine)
        if len(files) and len(jobs)
        else None
    )
    out = []
    for layer_key, code in (("pfs", LAYER_PFS), ("insystem", LAYER_INSYSTEM)):
        lmask = unique & (files["layer"] == code)
        for direction, bytes_col, time_col in (
            ("read", "bytes_read", "read_time"),
            ("write", "bytes_written", "write_time"),
        ):
            sel = lmask & (files[bytes_col] > 0)
            nfiles = int(sel.sum())
            seconds = float(files[time_col][sel].sum())
            if nfiles:
                t = files[time_col][sel]
                b = files[bytes_col][sel].astype(np.float64)
                with np.errstate(divide="ignore", invalid="ignore"):
                    bw = np.where(t > 0, b / t, np.nan)
                median = float(np.nanmedian(bw)) if np.isfinite(bw).any() else 0.0
            else:
                median = 0.0
            peak = (
                replay.demand(layer_key, direction).peak_utilization()
                if replay is not None
                else 0.0
            )
            out.append(
                PointMetrics(layer_key, direction, nfiles, seconds, median, peak)
            )
    return tuple(out)


@dataclass(frozen=True)
class WhatIfReport:
    """One sweep point's baseline-vs-scenario delta report."""

    platform: str
    scenario: str
    params: tuple[tuple[str, float], ...]
    baseline: tuple[PointMetrics, ...]
    outcome: tuple[PointMetrics, ...]
    #: Rows the plan relocated to the in-system layer.
    moved_files: int = 0

    @property
    def label(self) -> str:
        if not self.params:
            return self.scenario
        inner = ",".join(f"{k}={v:g}" for k, v in self.params)
        return f"{self.scenario}({inner})"

    def metric(self, layer: str, direction: str, *, baseline: bool = False):
        pool = self.baseline if baseline else self.outcome
        for m in pool:
            if m.layer == layer and m.direction == direction:
                return m
        raise WhatIfError(f"no metrics for ({layer!r}, {direction!r})")

    def time_ratio(self, layer: str, direction: str) -> float:
        """Scenario seconds over baseline seconds (1.0 = unchanged)."""
        base = self.metric(layer, direction, baseline=True).seconds
        scn = self.metric(layer, direction).seconds
        if base == 0.0:
            return 1.0 if scn == 0.0 else float("inf")
        return scn / base

    def to_rows(self) -> list[list[str]]:
        rows = []
        for base, scn in zip(self.baseline, self.outcome):
            if base.seconds == 0.0:
                ratio = 1.0 if scn.seconds == 0.0 else float("inf")
            else:
                ratio = scn.seconds / base.seconds
            files = f"{scn.files:,}"
            if scn.files != base.files:
                files += f" ({scn.files - base.files:+,})"
            rows.append([
                self.platform,
                self.label,
                base.layer,
                base.direction,
                files,
                f"{base.seconds:,.0f}",
                f"{scn.seconds:,.0f}",
                f"{ratio:.3f}x",
                f"{base.median_bw / 1e6:,.1f}",
                f"{scn.median_bw / 1e6:,.1f}",
                f"{100 * base.peak_util:.2f}%",
                f"{100 * scn.peak_util:.2f}%",
            ])
        return rows


# -- entry points ------------------------------------------------------------
def compute_point(
    store: RecordStore,
    scenario: str,
    params: Mapping | None = None,
) -> WhatIfReport:
    """One sweep point, computed inline against a store."""
    plan = get_scenario(scenario).plan(store.platform, params)
    with trace_span("whatif.point", "whatif") as sp:
        if sp is not None:
            sp.add(scenario=plan.scenario, rows=len(store.files))
        report, _ = _point(store.files, store.jobs, store.scale,
                           store.platform, plan, baseline=None)
        return report


def _point(files, jobs, scale, platform, plan, *, baseline):
    """(report, scenario file table) for one resolved plan."""
    scn_files, moved = replay_files(files, jobs, plan, platform)
    if baseline is None:
        baseline = point_metrics(files, jobs, plan.base_machine, scale, platform)
    outcome = point_metrics(scn_files, jobs, plan.machine, scale, platform)
    report = WhatIfReport(
        platform=platform,
        scenario=plan.scenario,
        params=plan.params,
        baseline=baseline,
        outcome=outcome,
        moved_files=moved,
    )
    return report, scn_files


def materialize(
    store: RecordStore,
    scenario: str,
    params: Mapping | None = None,
) -> RecordStore:
    """A new store holding the scenario's re-timed population.

    The twin as data: every downstream instrument — analyses, the serve
    registry, the facility replay — runs on the materialized store
    exactly as on a generated one. The identity scenario's output is
    bit-identical to the input's tables.
    """
    plan = get_scenario(scenario).plan(store.platform, params)
    scn_files, _ = replay_files(store.files, store.jobs, plan, store.platform)
    return RecordStore(
        store.platform,
        scn_files,
        store.jobs.copy(),
        domains=store.domains,
        extensions=store.extensions,
        scale=store.scale,
    )


def sweep(
    store: RecordStore,
    scenario: str,
    points: Sequence[Mapping | None],
    *,
    jobs: int | None = None,
    materialize: bool = False,
) -> list:
    """Replay a scenario at every parameter point, fanning out over the pool.

    Returns one :class:`WhatIfReport` per point, in point order; with
    ``materialize=True`` each element is ``(report, RecordStore)``. The
    baseline metrics are computed once (in the parent) and shared by
    every point. Results are byte-identical for every worker count:
    each point is computed wholly inside one worker from the same
    shared rows, and the math is deterministic.
    """
    from repro.parallel import resolve_jobs, run_sharded

    scn = get_scenario(scenario)
    points = list(points)
    if not points:
        raise WhatIfError(f"scenario {scenario!r}: sweep expanded to no points")
    plans = [scn.plan(store.platform, p) for p in points]
    njobs = resolve_jobs(jobs)
    with trace_span("whatif.sweep", "whatif") as sp:
        if sp is not None:
            sp.add(scenario=scenario, points=len(plans), jobs=njobs,
                   rows=len(store.files))
        baseline = point_metrics(
            store.files, store.jobs, plans[0].base_machine,
            store.scale, store.platform,
        )
        if njobs <= 1 or len(plans) <= 1:
            out = []
            for plan in plans:
                report, scn_files = _point(store.files, store.jobs, store.scale,
                                           store.platform, plan,
                                           baseline=baseline)
                if materialize:
                    out.append((report, RecordStore(
                        store.platform, scn_files, store.jobs.copy(),
                        domains=store.domains, extensions=store.extensions,
                        scale=store.scale,
                    )))
                else:
                    out.append(report)
            return out

        backing, arena = _export_backing(store)
        try:
            payloads = [
                (backing, store.jobs, store.platform, store.scale,
                 store.domains, store.extensions, plan, baseline, materialize)
                for plan in plans
            ]
            if materialize:
                return run_sharded(
                    _sweep_shard, payloads, jobs=njobs, shm=True,
                    reduce=_copy_out,
                )
            return run_sharded(_sweep_shard, payloads, jobs=njobs)
        finally:
            if arena is not None:
                arena.close()


def _export_backing(store: RecordStore):
    """Zero-copy row hand-off, mirroring the sharded analysis context:
    raw-layout stores are mmapped by workers (shared page cache), others
    are copied once into a shared-memory arena."""
    path = getattr(store, "files_path", None)
    if path is not None and isinstance(store.files, np.memmap):
        return ("mmap", path), None
    arena = fabric.Arena(store.files.dtype, store.files.shape)
    arena.view()[...] = store.files
    return ("arena", arena.spec), arena


def _sweep_shard(payload):
    """Pool worker: one sweep point, end to end. Module-level so it
    pickles under any start method; rows attach via the worker-side
    backing cache shared with sharded analysis."""
    (backing, jobs, platform, scale, domains, extensions,
     plan, baseline, want_store) = payload
    from repro.analysis.sharded import _open_rows

    with trace_span("whatif.shard", "whatif") as sp:
        if sp is not None:
            sp.add(scenario=plan.scenario)
        _, files = _open_rows(backing)
        report, scn_files = _point(
            files, jobs, scale, platform, plan, baseline=baseline
        )
        if not want_store:
            return report
        return (report, RecordStore(
            platform, scn_files, jobs.copy(),
            domains=domains, extensions=extensions, scale=scale,
        ))


def _copy_out(results: list) -> list:
    """Reduce for materialized sweeps: copy each store out of its shard's
    shared-memory segment before run_sharded unlinks it."""
    out = []
    for report, s in results:
        out.append((report, RecordStore(
            s.platform, s.files.copy(), s.jobs.copy(),
            domains=s.domains, extensions=s.extensions, scale=s.scale,
        )))
    return out

"""Scenario catalog: named, parameterized reconfigurations of a platform.

A :class:`Scenario` is the *declarative* half of the digital twin: it
names a reconfiguration of the subsystem ("double Lustre stripe count",
"degraded OSTs mid-rebuild", "2x noisy neighbors"), declares the JSON
scalar parameters it accepts, and resolves (platform, params) into a
fully-materialized, picklable :class:`ScenarioPlan` — the baseline and
scenario machine/perf-model pair the engine replays the stored
population through. Keeping the plan a plain data object is what lets
sweep points travel to pool workers and serve cache keys stay stable.

Every scenario has a **neutral point**: parameter values under which the
plan changes nothing. The engine guarantees (and the differential suite
pins) that a neutral plan's replay is bit-identical to the baseline —
the twin's equivalent of a calibrated instrument reading zero on a
blank.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

from repro.errors import WhatIfError
from repro.iosim.contention import ContentionModel
from repro.iosim.faults import BB_DRAIN, REBUILD_STORM, DegradationScenario, degrade_machine, degraded_perf_model
from repro.iosim.netmodel import network_for
from repro.iosim.perfmodel import PerfModel
from repro.platforms import get_platform
from repro.platforms.machine import Machine
from repro.units import GB


@dataclass(frozen=True)
class ParamSpec:
    """One scenario parameter: JSON-scalar valued, bounded, defaulted."""

    name: str
    default: float
    doc: str
    minimum: float | None = None
    maximum: float | None = None

    def resolve(self, value) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise WhatIfError(
                f"parameter {self.name!r} must be a number, got {value!r}"
            )
        value = float(value)
        if self.minimum is not None and value < self.minimum:
            raise WhatIfError(
                f"parameter {self.name!r} must be >= {self.minimum}, got {value}"
            )
        if self.maximum is not None and value > self.maximum:
            raise WhatIfError(
                f"parameter {self.name!r} must be <= {self.maximum}, got {value}"
            )
        return value


@dataclass(frozen=True)
class ScenarioPlan:
    """One resolved sweep point: everything a worker needs, picklable.

    ``base_machine``/``base_perf`` describe the subsystem as the stored
    population experienced it; ``machine``/``perf`` describe the
    counterfactual. Both perf models are forced deterministic — the
    engine replays through them for *ratios*, never for fresh noise
    (DESIGN.md §13). ``parallelism_scale`` multiplies the reconstructed
    file-layout parallelism on a layer ("double the stripe count");
    ``relocate_min_bytes`` moves write-only PFS files at or above the
    threshold to the in-system layer (checkpoint offload).
    """

    scenario: str
    params: tuple[tuple[str, float], ...]
    base_machine: Machine
    machine: Machine
    base_perf: PerfModel
    perf: PerfModel
    parallelism_scale: tuple[tuple[str, float], ...] = ()
    relocate_min_bytes: int | None = None

    def parallelism_factor(self, layer_key: str) -> float:
        for key, factor in self.parallelism_scale:
            if key == layer_key:
                return factor
        return 1.0

    def contention_model(self, perf: PerfModel, kind: str) -> ContentionModel:
        """The contention model a perf config applies to a layer kind.

        Mirrors ``PerfModel._contention_for`` without mutating the
        model's map (plans are shared across threads and workers).
        """
        model = perf.contention.get(kind)
        return model if model is not None else ContentionModel.for_layer_kind(kind)

    @property
    def is_identity(self) -> bool:
        """True when replaying this plan cannot change any row."""
        return (
            self.machine == self.base_machine
            and self.perf == self.base_perf
            and all(f == 1.0 for _, f in self.parallelism_scale)
            and self.relocate_min_bytes is None
        )


def _base_pair(platform: str) -> tuple[Machine, PerfModel]:
    """The baseline (machine, deterministic perf model) for a platform.

    The perf model matches the generator's (same caps, same
    interconnect) with noise+contention sampling disabled: the engine
    wants the modeled *mechanism* value per transfer, keeping each stored
    row's realized contention/noise draw as its production-load
    measurement.
    """
    machine = get_platform(platform)
    perf = PerfModel(deterministic=True, network=network_for(platform))
    return machine, perf


@dataclass(frozen=True)
class Scenario:
    """One named what-if: parameter schema plus the plan builder."""

    name: str
    title: str
    description: str
    params: tuple[ParamSpec, ...]
    build: Callable[[str, dict], ScenarioPlan]

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def resolve_params(self, params: Mapping | None) -> dict[str, float]:
        """Defaults filled in, bounds checked, unknown names rejected."""
        params = dict(params or {})
        unknown = sorted(set(params) - set(self.param_names))
        if unknown:
            accepted = ", ".join(self.param_names) or "none"
            raise WhatIfError(
                f"scenario {self.name!r} got unknown parameter(s) "
                f"{', '.join(unknown)}; accepted: {accepted}"
            )
        return {
            spec.name: spec.resolve(params.get(spec.name, spec.default))
            for spec in self.params
        }

    def plan(self, platform: str, params: Mapping | None = None) -> ScenarioPlan:
        """Resolve one sweep point for a platform."""
        resolved = self.resolve_params(params)
        plan = self.build(platform, resolved)
        return replace(plan, scenario=self.name, params=tuple(sorted(resolved.items())))


# -- builders ----------------------------------------------------------------
def _build_identity(platform: str, params: dict) -> ScenarioPlan:
    machine, perf = _base_pair(platform)
    return ScenarioPlan("identity", (), machine, machine, perf, perf)


def _build_stripe(platform: str, params: dict) -> ScenarioPlan:
    machine, perf = _base_pair(platform)
    return ScenarioPlan(
        "stripe", (), machine, machine, perf, perf,
        parallelism_scale=(("pfs", params["factor"]),),
    )


def _build_bb_offload(platform: str, params: dict) -> ScenarioPlan:
    machine, perf = _base_pair(platform)
    min_bytes = None
    if params["enabled"]:
        min_bytes = int(params["min_gb"] * GB)
    return ScenarioPlan(
        "bb_offload", (), machine, machine, perf, perf,
        relocate_min_bytes=min_bytes,
    )


def _degraded(platform: str, layer_key: str, params: dict,
              preset: DegradationScenario) -> ScenarioPlan:
    machine, perf = _base_pair(platform)
    offline = params["servers_offline"]
    overhead = params["rebuild_overhead"]
    if offline == 0.0 and overhead == 0.0:
        # Neutral point: a zero-magnitude fault is the healthy machine.
        return ScenarioPlan("fault", (), machine, machine, perf, perf)
    scenario = DegradationScenario(
        name=f"{preset.name}@{offline:g}/{overhead:g}",
        servers_offline=offline,
        rebuild_overhead=overhead,
        contention_alpha=preset.contention_alpha,
        contention_beta=preset.contention_beta,
    )
    return ScenarioPlan(
        "fault", (), machine,
        degrade_machine(machine, layer_key, scenario),
        perf,
        degraded_perf_model(perf, layer_key, scenario),
    )


def _build_ost_fault(platform: str, params: dict) -> ScenarioPlan:
    return _degraded(platform, "pfs", params, REBUILD_STORM)


def _build_bb_drain(platform: str, params: dict) -> ScenarioPlan:
    return _degraded(platform, "insystem", params, BB_DRAIN)


def _build_contention(platform: str, params: dict) -> ScenarioPlan:
    machine, perf = _base_pair(platform)
    factor = params["factor"]
    if factor == 1.0:
        return ScenarioPlan("contention", (), machine, machine, perf, perf)
    crowded = {
        kind: ContentionModel.for_layer_kind(kind).crowded(factor)
        for kind in ("pfs", "insystem")
    }
    return ScenarioPlan(
        "contention", (), machine, machine, perf,
        replace(perf, contention=crowded),
    )


_FRACTION = dict(minimum=0.0, maximum=0.99)

_SCENARIOS = (
    Scenario(
        "identity",
        "Identity (no reconfiguration)",
        "Replays the population through an unchanged subsystem; the "
        "result is bit-identical to the baseline (the twin's zero check).",
        (),
        _build_identity,
    ),
    Scenario(
        "stripe",
        "Scale PFS file-layout parallelism (stripe count)",
        "Multiplies every file's reconstructed PFS layout parallelism — "
        "Lustre stripe count, GPFS NSD spread — by `factor` (2 doubles "
        "the stripe count, 0.5 halves it).",
        (ParamSpec("factor", 2.0, "layout-parallelism multiplier",
                   minimum=0.0625, maximum=64.0),),
        _build_stripe,
    ),
    Scenario(
        "bb_offload",
        "Offload checkpoint-class files to the burst buffer",
        "Moves write-only PFS files of at least `min_gb` GB — the "
        "checkpoint archetype's signature — to the in-system layer, "
        "re-deriving their write times under its caps and contention.",
        (ParamSpec("min_gb", 1.0, "minimum file size moved, GB",
                   minimum=0.0),
         ParamSpec("enabled", 1, "0 disables the move (neutral point)",
                   minimum=0, maximum=1)),
        _build_bb_offload,
    ),
    Scenario(
        "ost_fault",
        "Degraded PFS: servers out, rebuild traffic on the survivors",
        "An OSS/NSD enclosure failure mid-rebuild (faults.REBUILD_STORM "
        "shape): `servers_offline` of the PFS servers gone, "
        "`rebuild_overhead` of the survivors' bandwidth consumed, "
        "contention shifted toward low availability.",
        (ParamSpec("servers_offline", REBUILD_STORM.servers_offline,
                   "fraction of PFS servers unavailable", **_FRACTION),
         ParamSpec("rebuild_overhead", REBUILD_STORM.rebuild_overhead,
                   "survivor bandwidth lost to rebuild traffic", **_FRACTION)),
        _build_ost_fault,
    ),
    Scenario(
        "bb_drain",
        "Burst-buffer drain/eviction: in-system nodes out of service",
        "A rolling burst-buffer maintenance drain (faults.BB_DRAIN "
        "shape) applied to the in-system layer.",
        (ParamSpec("servers_offline", BB_DRAIN.servers_offline,
                   "fraction of BB nodes draining", **_FRACTION),
         ParamSpec("rebuild_overhead", BB_DRAIN.rebuild_overhead,
                   "survivor bandwidth lost to eviction traffic", **_FRACTION)),
        _build_bb_drain,
    ),
    Scenario(
        "contention",
        "Noisy neighbors: N-times the interfering production load",
        "Scales the contention model's interfering-load shape on both "
        "layers by `factor` (2 = twice as crowded), shifting every "
        "transfer's expected available-bandwidth fraction.",
        (ParamSpec("factor", 2.0, "interfering-load multiplier",
                   minimum=0.0625, maximum=64.0),),
        _build_contention,
    ),
)


def scenario_catalog() -> dict[str, Scenario]:
    """Name -> scenario for every built-in what-if."""
    return {s.name: s for s in _SCENARIOS}


def get_scenario(name: str) -> Scenario:
    try:
        return scenario_catalog()[name]
    except KeyError:
        raise WhatIfError(
            f"unknown scenario {name!r}; "
            f"available: {', '.join(sorted(scenario_catalog()))}"
        ) from None

"""Federated QuerySpecs: the catalog's query surface.

:func:`federated_registry` wraps every *mergeable* spec of the base
registry in a federation-aware twin — same name, same headers, plus the
routing parameters (``member``, ``facility``, ``platform``, ``period``)
— and adds one ``compare_<name>`` spec per mergeable query (params
``a``/``b``: the two member labels) and a ``catalog_members`` listing.
The specs dispatch into a shared :class:`~repro.federation.executor.
FederationExecutor` and ignore the engine-provided store/context: the
executor owns member stores, contexts, and caches.

Because the federated registry is made of ordinary
:class:`~repro.serve.registry.QuerySpec` entries, the whole surface is
served identically by ``repro query --catalog`` (in process) and
``repro serve --catalog`` (over NDJSON) — the ISSUE's "first-class
registry entries" requirement, by construction.

All federated specs are ``cacheable=False`` **at the engine level**:
the engine's cache keys on its own store's generation, which says
nothing about member stores. Correct generation-keyed caching lives in
the executor (per-member tokens); marking the specs uncacheable routes
every request there.
"""

from __future__ import annotations

from repro.federation.executor import ROUTING_PARAMS, FederationExecutor
from repro.serve.registry import QuerySpec


def _federated_runner(executor: FederationExecutor, name: str):
    def run(store, ctx, params):
        return executor.query(name, params)

    return run


def _compare_runner(executor: FederationExecutor, name: str):
    def run(store, ctx, params):
        params = dict(params)
        a = params.pop("a", None)
        b = params.pop("b", None)
        if not a or not b:
            from repro.errors import CatalogError

            raise CatalogError(
                f"compare_{name} needs params a=<member> and b=<member>; "
                f"members: {', '.join(executor.catalog.labels) or '(empty)'}"
            )
        return executor.compare(name, str(a), str(b), params)

    return run


def _members_runner(executor: FederationExecutor):
    def run(store, ctx, params):
        return executor.members_table()

    return run


def federated_query_names() -> list[str]:
    """Every federated query name, without needing a catalog.

    The CLI's ``--exhibit`` choices are built at parser-construction
    time, before any catalog exists; this enumerates the same names
    :func:`federated_registry` would register.
    """
    from repro.serve.registry import default_registry

    names = ["catalog_members"]
    for name, spec in default_registry().items():
        if spec.mergeable:
            names.append(name)
            names.append(f"compare_{name}")
    return sorted(names)


def federated_registry(
    executor: FederationExecutor,
) -> dict[str, QuerySpec]:
    """Name -> federated spec for every mergeable base query."""
    specs: list[QuerySpec] = [
        QuerySpec(
            "catalog_members",
            "Catalog - member stores",
            "table",
            "catalog",
            _members_runner(executor),
            cacheable=False,
        )
    ]
    for name, base in executor.registry.items():
        if not base.mergeable:
            continue
        specs.append(
            QuerySpec(
                name,
                f"{base.title} (federated)",
                base.kind,
                base.header_key,
                _federated_runner(executor, name),
                param_names=(*base.param_names, *ROUTING_PARAMS),
                cacheable=False,
                mergeable=True,
            )
        )
        specs.append(
            QuerySpec(
                f"compare_{name}",
                f"{base.title} (cross-store compare)",
                "table",
                "compare",
                _compare_runner(executor, name),
                param_names=(*base.param_names, "a", "b"),
                cacheable=False,
            )
        )
    return {spec.name: spec for spec in specs}

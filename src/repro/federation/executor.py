"""Scatter-gather execution over a StoreCatalog's members.

The request path mirrors the single-store serve engine, lifted one
level: route (which members?) → per-member execute (each through its
own store's :class:`~repro.analysis.context.AnalysisContext`, behind a
per-member LRU cache) → combine (exact reducer, or merged-store
fallback).

**Per-member caching.** Every local member result is cached under
``(label, query, params, token)`` where the token is ``(manifest
generation, store generation)`` — the catalog's change-detection
counter plus the loaded store's own mutation counter. Appending a month
to one member bumps only that member's token; every other member's
entries stay addressable, so a fleet-wide query after a single-member
append recomputes exactly one member. Remote members are not cached
here at all: the remote engine already holds a generation-keyed cache
on its side of the socket, and caching its serialized answers locally
would reintroduce the staleness the token discipline exists to prevent.

**Combining.** Queries with an exact reducer (:data:`~repro.federation.
reduce.REDUCERS` — the associative-sum family) are reduced member-wise,
bit-identical to the merged table. Everything else mergeable falls back
to a real merged store — ``merge_stores(remap_log_ids=True,
remap_job_ids=True)``, members as independent populations in catalog
order — built once and cached against the tuple of member tokens.
Remote members participate in single-member routing and compares (both
operate on wire-form results); a scatter that would need their raw
tables raises a typed :class:`~repro.errors.CatalogError` instead of
silently downloading a facility-month over NDJSON.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from threading import RLock
from typing import Mapping

from repro.errors import CatalogError, CatalogMemberError
from repro.federation.catalog import CatalogMember, StoreCatalog
from repro.federation.compare import compare_serialized
from repro.federation.reduce import REDUCERS, reduce_results
from repro.obs.tracer import trace_event, trace_span
from repro.serve.cache import ResultCache
from repro.serve.metrics import Metrics
from repro.serve.registry import (
    QuerySpec,
    default_registry,
    serialize_result,
    validate_params,
)
from repro.store.merge import merge_stores
from repro.store.recordstore import RecordStore

#: Parameters the executor consumes for routing; the remainder of a
#: request's params go to the underlying query.
ROUTING_PARAMS = ("member", "facility", "platform", "period")


class FederationExecutor:
    """Runs registry queries across the members of one catalog."""

    def __init__(
        self,
        catalog: StoreCatalog,
        *,
        max_workers: int = 4,
        cache_entries: int = 256,
        registry: Mapping[str, QuerySpec] | None = None,
    ):
        self.catalog = catalog
        self.registry = dict(registry) if registry is not None else default_registry()
        self.metrics = Metrics()
        for name in ("member_runs", "scatter", "reduced", "merged_fallback",
                     "compare", "remote_runs"):
            self.metrics.counter(name)
        #: Per-member results plus merged-fallback results, LRU.
        self.cache = ResultCache(cache_entries)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-fed"
        )
        self._lock = RLock()
        #: label -> (manifest generation it was loaded at, store).
        self._stores: dict[str, tuple[int, RecordStore]] = {}
        #: token tuple -> merged store (kept across queries at one
        #: fleet state; dropped wholesale when any member moves).
        self._merged: tuple[tuple, RecordStore] | None = None

    # -- member plumbing -----------------------------------------------------
    def member_store(self, label: str) -> RecordStore:
        """The loaded store of a local member (reloaded when the
        manifest generation moved past the loaded copy)."""
        member = self.catalog.member(label)
        with self._lock:
            held = self._stores.get(label)
            if held is not None and held[0] == member.generation:
                return held[1]
            store = self.catalog.load_member(label)
            self._stores[label] = (member.generation, store)
            return store

    def _token(self, member: CatalogMember) -> tuple:
        """Cache token for one member's current state."""
        store = self.member_store(member.label)
        return (member.generation, store.generation)

    def _base_spec(self, name: str) -> QuerySpec:
        spec = self.registry.get(name)
        if spec is None:
            raise CatalogError(
                f"unknown query {name!r}; federation serves the mergeable "
                "registry queries"
            )
        return spec

    def _split_params(
        self, spec: QuerySpec, params: Mapping | None
    ) -> tuple[dict, dict]:
        """(routing params, validated query params) of one request."""
        params = dict(params or {})
        routing = {
            k: params.pop(k) for k in ROUTING_PARAMS if params.get(k) is not None
        }
        for k in ROUTING_PARAMS:
            params.pop(k, None)  # explicit nulls route like absences
        return routing, validate_params(spec, params)

    def select(self, routing: Mapping) -> list[CatalogMember]:
        """Members a request routes to (typed error when none match)."""
        labels = None
        if routing.get("member"):
            labels = [
                part.strip()
                for part in str(routing["member"]).split(",")
                if part.strip()
            ]
        picked = self.catalog.select(
            labels,
            facility=routing.get("facility"),
            platform=routing.get("platform"),
            period=routing.get("period"),
        )
        if not picked:
            axes = ", ".join(f"{k}={v!r}" for k, v in routing.items()) or "all"
            raise CatalogError(
                f"no catalog members match ({axes}); members: "
                f"{', '.join(self.catalog.labels) or '(empty)'}"
            )
        return picked

    # -- per-member execution ------------------------------------------------
    def run_member(self, member: CatalogMember, name: str, params: dict):
        """One member's result: in-process object (local member, cached
        under the member token) or wire dict (remote member)."""
        spec = self._base_spec(name)
        if member.kind == "serve":
            from repro.serve.client import ServeClient

            self.metrics.counter("remote_runs").inc()
            with trace_span("federation.remote", "federation") as sp:
                if sp is not None:
                    sp.add(member=member.label, query=name)
                try:
                    host, port = member.endpoint
                    with ServeClient(host, port) as client:
                        return client.query(name, params)
                except OSError as exc:
                    raise CatalogMemberError(
                        member.label, f"endpoint {member.location}: {exc}"
                    ) from None
        token = self._token(member)
        key = (member.label, name, tuple(sorted(params.items())), token)
        hit, value = self.cache.get(key)
        if hit:
            trace_event(
                "federation.cache_hit", "federation",
                member=member.label, query=name,
            )
            return value
        self.metrics.counter("member_runs").inc()
        with trace_span("federation.member", "federation") as sp:
            if sp is not None:
                sp.add(member=member.label, query=name)
            store = self.member_store(member.label)
            result = spec.run(store, store.analysis(), params)
        self.cache.put(key, result)
        return result

    def _scatter(
        self, members: list[CatalogMember], name: str, params: dict
    ) -> list:
        """Per-member results, in member order, computed concurrently."""
        self.metrics.counter("scatter").inc()
        futures = [
            self._pool.submit(self.run_member, m, name, params)
            for m in members
        ]
        return [f.result() for f in futures]

    # -- merged-store fallback -----------------------------------------------
    def merged_store(self, members: list[CatalogMember]) -> RecordStore:
        """The members' merged store (independent populations, catalog
        order), cached against the member-token tuple."""
        remote = [m.label for m in members if m.kind != "store"]
        if remote:
            raise CatalogError(
                f"query needs the raw tables of remote member(s) "
                f"{', '.join(remote)}; route it per member "
                "(params {'member': <label>}) or use a compare query"
            )
        tokens = tuple((m.label, self._token(m)) for m in members)
        with self._lock:
            if self._merged is not None and self._merged[0] == tokens:
                return self._merged[1]
        with trace_span("federation.merge", "federation") as sp:
            if sp is not None:
                sp.add(members=len(members))
            merged = merge_stores(
                [self.member_store(m.label) for m in members],
                remap_log_ids=True,
                remap_job_ids=True,
            )
        with self._lock:
            self._merged = (tokens, merged)
        return merged

    # -- the federated request path ------------------------------------------
    def query(self, name: str, params: Mapping | None = None):
        """Route, execute, combine — the federated form of one query.

        Routing params (``member`` — one label or a comma-separated
        subset — ``facility``, ``platform``, ``period``) pick the
        members; the rest of ``params`` goes to the query itself.
        Returns an in-process result object, or the wire dict when a
        single remote member answered.
        """
        spec = self._base_spec(name)
        routing, params = self._split_params(spec, params)
        members = self.select(routing)
        with trace_span("federation.query", "federation") as sp:
            if sp is not None:
                sp.add(query=name, members=len(members))
            if len(members) == 1:
                return self.run_member(members[0], name, params)
            if name in REDUCERS:
                remote = [m.label for m in members if m.kind != "store"]
                if remote:
                    raise CatalogError(
                        f"cannot scatter-reduce {name!r} over remote "
                        f"member(s) {', '.join(remote)}; route per member "
                        "or compare two members instead"
                    )
                results = self._scatter(members, name, params)
                self.metrics.counter("reduced").inc()
                return reduce_results(name, results)
            self.metrics.counter("merged_fallback").inc()
            store = self.merged_store(members)
            key = (
                "__merged__", name, tuple(sorted(params.items())),
                tuple((m.label, self._token(m)) for m in members),
            )
            hit, value = self.cache.get(key)
            if hit:
                return value
            result = spec.run(store, store.analysis(), params)
            self.cache.put(key, result)
            return result

    def compare(self, name: str, a: str, b: str, params: Mapping | None = None):
        """Cross-store comparison of one query between two members.

        Both sides are serialized to wire form first (so local and
        remote members compare identically), then aligned row-by-row on
        their non-numeric key cells; numeric cells become (a, b, delta,
        delta%) rows. Returns a
        :class:`~repro.federation.compare.CompareReport`.
        """
        spec = self._base_spec(name)
        _, params = self._split_params(spec, params)
        if a == b:
            raise CatalogError(
                f"compare needs two distinct members, got {a!r} twice"
            )
        self.metrics.counter("compare").inc()
        with trace_span("federation.compare", "federation") as sp:
            if sp is not None:
                sp.add(query=name, a=a, b=b)
            sides = self._scatter(
                [self.catalog.member(a), self.catalog.member(b)], name, params
            )
            wire = [
                side if isinstance(side, dict) else serialize_result(spec, side)
                for side in sides
            ]
            return compare_serialized(name, a, b, wire[0], wire[1])

    def anchor_store(self) -> RecordStore:
        """A store for a serving engine to anchor on.

        The engine's constructor and ``stats`` surface want *a* store;
        federated specs never read it. Use the first local member's, or
        an empty placeholder when every member is remote.
        """
        for member in self.catalog:
            if member.kind == "store":
                return self.member_store(member.label)
        from repro.store.schema import empty_files, empty_jobs

        members = self.catalog.members
        platform = members[0].platform if members else ""
        return RecordStore(
            platform or "federation", empty_files(0), empty_jobs(0)
        )

    # -- introspection -------------------------------------------------------
    def members_table(self):
        """Rows for the ``catalog_members`` query (manifest order)."""
        from repro.federation.compare import TableResult

        rows = [
            [
                m.label, m.kind, m.facility or "-", m.platform or "-",
                m.period or "-", str(m.generation), str(m.rows), str(m.jobs),
            ]
            for m in self.catalog
        ]
        return TableResult(rows)

    def stats(self) -> dict:
        snap = self.metrics.snapshot()
        return {
            "catalog": {
                "path": self.catalog.path,
                "members": len(self.catalog),
                "loaded": sorted(self._stores),
            },
            "cache": self.cache.info(),
            "counters": snap["counters"],
        }

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "FederationExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FederationExecutor({self.catalog.path!r}, "
            f"members={len(self.catalog)})"
        )

"""Exact cross-member reduction of scatter-gather query results.

Mergeable queries come in two flavours. A handful aggregate *only*
associatively-exact quantities — ``int64`` row counts, byte sums, and
histogram-bin tallies — over pure row-local predicates
(:class:`~repro.analysis.context.AnalysisContext` masks are all
row-local). For those, the result over a concatenation of member stores
is the member-wise sum, **bit-identically**: summing each member's
integer tallies and recomputing the derived percentages is exactly what
a cold pass over the merged table would do. These are the same queries
that registered an append fold (``register_result_fold``) — the fold's
associativity argument is the reducer's correctness argument, applied
across stores instead of across appends.

Everything else (medians, CDF sample pools, per-user groupings, ...)
has no exact member-wise reduction and goes through the executor's
merged-store fallback instead.

Reducers receive the per-member results **in member (catalog) order**
and return what the query would produce on the members' merged store.
Member order matters only for error messages — every reduction here is
commutative.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.analysis.cdf import weighted_cdf
from repro.analysis.file_classification import FileClassification
from repro.analysis.interface_usage import InterfaceUsage
from repro.analysis.layer_volumes import LayerRow, LayerVolumes
from repro.analysis.request_cdfs import RequestCdf
from repro.errors import CatalogError
from repro.store.schema import LAYER_CODES

#: (layer name, code) pairs in the canonical ``layer_items()`` order the
#: single-store ``_compute`` bodies iterate — reducers must emit curves
#: and rows in exactly this order to stay bit-identical.
_LAYER_ITEMS = tuple(
    (name, code) for name, code in LAYER_CODES.items() if name != "other"
)


def _check_uniform(results: Sequence, query: str) -> None:
    """Platform/scale must agree, as ``merge_stores`` would enforce."""
    platforms = {r.platform for r in results}
    if len(platforms) > 1:
        raise CatalogError(
            f"cannot reduce {query!r} across platforms "
            f"{', '.join(sorted(platforms))}; route per member or select "
            "one platform"
        )
    scales = {r.scale for r in results if hasattr(r, "scale")}
    if len(scales) > 1:
        raise CatalogError(
            f"cannot reduce {query!r} across member scales "
            f"{', '.join(f'{s:g}' for s in sorted(scales))}"
        )


def _reduce_layer_volumes(results: Sequence[LayerVolumes]) -> LayerVolumes:
    """Table 3: file counts and byte volumes add exactly per layer."""
    _check_uniform(results, "table3")
    rows = {}
    for name in ("insystem", "pfs"):
        parts = [getattr(r, name) for r in results]
        rows[name] = LayerRow(
            layer=name,
            files=sum(p.files for p in parts),
            bytes_read=sum(p.bytes_read for p in parts),
            bytes_written=sum(p.bytes_written for p in parts),
        )
    return LayerVolumes(
        platform=results[0].platform,
        scale=results[0].scale,
        insystem=rows["insystem"],
        pfs=rows["pfs"],
    )


def _reduce_interface_usage(results: Sequence[InterfaceUsage]) -> InterfaceUsage:
    """Table 6: per-(layer, interface) row counts add exactly."""
    _check_uniform(results, "table6")
    first = results[0]
    counts = {
        layer: {
            iface: sum(r.counts[layer][iface] for r in results)
            for iface in first.counts[layer]
        }
        for layer in first.counts
    }
    return InterfaceUsage(
        platform=first.platform, scale=first.scale, counts=counts
    )


def _reduce_request_cdfs(
    results: Sequence[list[RequestCdf]],
) -> list[RequestCdf]:
    """Figures 4/5: bin tallies add; percentages recomputed from sums.

    Rebuilds the curve list in ``_compute``'s canonical layer-by-
    direction order with its skip rules: a (layer, direction) curve
    exists iff the summed tallies are nonzero — a member that skipped
    the curve (empty index or all-zero tallies) contributes zero, which
    is exactly its contribution to the merged table.
    """
    curves = [c for r in results for c in r]
    if curves:
        _check_uniform(curves, "request_cdfs")
    tallies: dict[tuple[str, str], np.ndarray] = {}
    exemplar: dict[tuple[str, str], RequestCdf] = {}
    for curve in curves:
        key = (curve.layer, curve.direction)
        totals = np.asarray(curve.bin_totals, dtype=np.int64)
        if key in tallies:
            tallies[key] = tallies[key] + totals
        else:
            tallies[key] = totals
            exemplar[key] = curve
    out = []
    for layer, _code in _LAYER_ITEMS:
        for direction in ("read", "write"):
            totals = tallies.get((layer, direction))
            if totals is None or totals.sum() == 0:
                continue
            seed = exemplar[(layer, direction)]
            out.append(
                RequestCdf(
                    platform=seed.platform,
                    layer=layer,
                    direction=direction,
                    large_jobs_only=seed.large_jobs_only,
                    total_calls=int(totals.sum()),
                    bin_labels=seed.bin_labels,
                    cumulative_percent=tuple(weighted_cdf(totals)),
                    bin_totals=tuple(int(t) for t in totals),
                )
            )
    return out


def _reduce_file_classification(
    results: Sequence[FileClassification],
) -> FileClassification:
    """Figures 6/8: per-(layer, class) counts add exactly."""
    _check_uniform(results, "file_classification")
    first = results[0]
    counts = {
        layer: {
            cls: sum(r.counts[layer][cls] for r in results)
            for cls in first.counts[layer]
        }
        for layer in first.counts
    }
    return FileClassification(
        platform=first.platform,
        scale=first.scale,
        interfaces=first.interfaces,
        counts=counts,
    )


#: Query name -> exact reducer. Membership here is a *proof obligation*:
#: the differential federation suite pins each entry bit-identical to
#: the merged-store answer.
REDUCERS: dict[str, Callable] = {
    "table3": _reduce_layer_volumes,
    "table6": _reduce_interface_usage,
    "fig4": _reduce_request_cdfs,
    "fig5": _reduce_request_cdfs,
    "fig6": _reduce_file_classification,
    "fig8": _reduce_file_classification,
}


def reduce_results(query: str, results: Sequence) -> object:
    """Reduce per-member results of ``query`` (must be in REDUCERS)."""
    if not results:
        raise CatalogError(f"cannot reduce {query!r} over zero members")
    return REDUCERS[query](results)

"""Cross-store comparison: align two members' tables, diff the numbers.

``compare_<query>`` answers the question the paper answers by juxtaposing
Summit and Cori columns: *how does the same exhibit differ across two
facilities (or two months of one facility)?* It operates on the **wire
form** of each side's result — the serialized rows every member can
produce, whether it lives in-process or behind a remote ``repro serve``
endpoint — so the comparison is identical no matter where the data is.

Alignment is by *row key*: the tuple of a row's non-numeric cells
(platform, layer, interface, direction, ...). Numeric cells — plain
floats, the table formatters' count suffixes (``7.7M``), byte sizes
(``1.50 GB``), percentages, and ratio suffixes (``3.63x``) — are parsed
back to numbers and emitted as one comparison row each: key, column,
both values, absolute delta, and relative delta. Rows present on only
one side are reported as such rather than dropped — a missing curve *is*
a finding (e.g. one month had zero in-system MPI-IO traffic).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.units import parse_size

#: ``7.7M`` / ``281.6K`` / ``2.1B`` — repro.units.format_count output.
_COUNT_RE = re.compile(r"^-?[0-9]+(?:\.[0-9]+)?[KMB]$")
#: ``1.50 GB`` / ``202.18 PB`` / ``950 B`` — format_size output.
_SIZE_RE = re.compile(r"^-?[0-9]+(?:\.[0-9]+)?\s+[KMGTP]?i?B$")

_COUNT_FACTORS = {"K": 1e3, "M": 1e6, "B": 1e9}


@dataclass(frozen=True)
class TableResult:
    """A bare pre-rendered table, for results built from rows directly
    (the catalog-members listing) — quacks like an analysis result."""

    rows: list[list[str]]

    def to_rows(self) -> list[list[str]]:
        return self.rows


def parse_cell(text: str) -> float | None:
    """The numeric value of a table cell, or None for a key cell.

    Handles every numeric format the report renderers emit: plain
    numbers, ``format_count`` suffixes, ``format_size`` byte strings,
    trailing ``%`` and ``x``, and the non-finite spellings (``inf``,
    ``nan``) serialization produces.
    """
    text = text.strip()
    if not text:
        return None
    body = text[:-1].strip() if text[-1] in "%x" else text
    try:
        return float(body)  # also accepts 'inf'/'nan'
    except ValueError:
        pass
    if _COUNT_RE.match(body):
        return float(body[:-1]) * _COUNT_FACTORS[body[-1]]
    if _SIZE_RE.match(body):
        sign, mag = (-1.0, body[1:]) if body.startswith("-") else (1.0, body)
        try:
            return sign * parse_size(mag)
        except ValueError:
            return None
    return None


def _row_key(row: list[str]) -> tuple:
    """Non-numeric cells, positionally tagged — the alignment key."""
    return tuple(
        (i, cell) for i, cell in enumerate(row) if parse_cell(cell) is None
    )


def _column_name(headers: list[str] | None, i: int) -> str:
    if headers and i < len(headers):
        return headers[i]
    return f"col{i}"


@dataclass(frozen=True)
class CompareReport:
    """One cross-member comparison, renderable as a standard table."""

    query: str
    member_a: str
    member_b: str
    #: [key, column, value_a, value_b, delta, relative delta] rows.
    rows: list[list[str]] = field(default_factory=list)
    #: Row keys present on exactly one side.
    only_a: list[str] = field(default_factory=list)
    only_b: list[str] = field(default_factory=list)

    def to_rows(self) -> list[list[str]]:
        out = [list(row) for row in self.rows]
        for key in self.only_a:
            out.append([key, "(row)", "present", "absent", "-", "-"])
        for key in self.only_b:
            out.append([key, "(row)", "absent", "present", "-", "-"])
        return out


def _format_delta(a: float, b: float) -> tuple[str, str]:
    """(absolute, relative) delta cells for one aligned numeric pair."""
    if a == b:  # covers inf == inf, where b - a would be nan
        return "0", "0.0%"
    delta = b - a
    rel = f"{100.0 * delta / a:+.1f}%" if a else "inf"
    return f"{delta:+g}", rel


def compare_serialized(
    query: str, label_a: str, label_b: str, wire_a: dict, wire_b: dict
) -> CompareReport:
    """Diff two wire-form ``table`` results (see module docstring)."""
    for label, wire in ((label_a, wire_a), (label_b, wire_b)):
        if wire.get("kind") != "table":
            raise CatalogError(
                f"compare_{query}: member {label!r} returned kind "
                f"{wire.get('kind')!r}; only table queries compare"
            )
    headers = wire_a.get("headers") or wire_b.get("headers")
    sides: list[dict[tuple, list[str]]] = []
    for label, wire in ((label_a, wire_a), (label_b, wire_b)):
        keyed: dict[tuple, list[str]] = {}
        for row in wire.get("rows", []):
            row = [str(c) for c in row]
            key = _row_key(row)
            if key in keyed:
                raise CatalogError(
                    f"compare_{query}: member {label!r} has two rows with "
                    f"key {'/'.join(c for _, c in key) or '(all numeric)'}; "
                    "rows must be distinguishable by their label cells"
                )
            keyed[key] = row
        sides.append(keyed)
    a_rows, b_rows = sides

    def pretty(key: tuple) -> str:
        return "/".join(cell for _, cell in key) or "(row)"

    rows: list[list[str]] = []
    for key, row_a in a_rows.items():
        row_b = b_rows.get(key)
        if row_b is None:
            continue
        width = max(len(row_a), len(row_b))
        for i in range(width):
            cell_a = row_a[i] if i < len(row_a) else ""
            cell_b = row_b[i] if i < len(row_b) else ""
            va, vb = parse_cell(cell_a), parse_cell(cell_b)
            if va is None or vb is None:
                continue
            delta, rel = _format_delta(va, vb)
            rows.append(
                [pretty(key), _column_name(headers, i),
                 cell_a, cell_b, delta, rel]
            )
    return CompareReport(
        query=query,
        member_a=label_a,
        member_b=label_b,
        rows=rows,
        only_a=[pretty(k) for k in a_rows if k not in b_rows],
        only_b=[pretty(k) for k in b_rows if k not in a_rows],
    )

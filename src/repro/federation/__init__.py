"""Multi-store federation: one query surface over many facility-months.

The paper studies two facilities over one window each; this package
scales the reproduction sideways — a :class:`StoreCatalog` names the
fleet of member stores (per facility, platform, and month, local files
or remote ``repro serve`` endpoints), and a
:class:`FederationExecutor` answers registry queries across it:
scatter to the selected members, gather by exact associative reduction
(bit-identical to the merged table) or a cached merged-store pass, with
per-member generation-keyed caching so one member's growth never
invalidates another's results. See DESIGN.md §14.
"""

from repro.federation.catalog import (
    CatalogMember,
    StoreCatalog,
    load_catalog,
)
from repro.federation.compare import CompareReport, compare_serialized
from repro.federation.executor import FederationExecutor
from repro.federation.reduce import REDUCERS, reduce_results
from repro.federation.registry import federated_registry

__all__ = [
    "CatalogMember",
    "CompareReport",
    "FederationExecutor",
    "REDUCERS",
    "StoreCatalog",
    "compare_serialized",
    "federated_registry",
    "load_catalog",
    "reduce_results",
]

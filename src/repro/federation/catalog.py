"""StoreCatalog: a JSON manifest of member stores across facilities/months.

The paper characterizes one facility over one window; production is a
*fleet* of windows — per-facility, per-month, per-platform stores, each
generated, ingested, or streamed independently. The catalog is the
single source of truth for that fleet:

* **Manifest** — one JSON file (``catalog.json`` by convention) listing
  members with their routing labels (facility / platform / period), the
  store schema version they were written at, a per-member *generation*
  counter, and row/job counts. Every mutation rewrites the manifest
  atomically (tmp + ``os.replace``), so a crashed ``repro catalog add``
  never leaves a half-written fleet description.
* **Members** — either a local store (``.npz`` file or ``.store``
  directory, path stored relative to the manifest so catalogs relocate
  with their data) or a remote ``repro serve`` endpoint (``host:port``),
  so the catalog federates *processes*, not just files.
* **Generations** — :meth:`StoreCatalog.refresh` fingerprints each
  file-backed member (size + mtime of the table files) and bumps the
  member's generation when the backing changed. The federation
  executor's per-member result cache keys on that generation, so
  appending a month to one member never invalidates another member's
  cached results.
* **Verification** — :meth:`StoreCatalog.verify` loads/probes every
  member and reports missing or corrupt members, mixed store schema
  versions, malformed or *overlapping* periods on the same
  (facility, platform), and scale mismatches — each with an actionable
  message naming the member.

Errors are typed (:class:`~repro.errors.CatalogError` and subclasses);
a federation over dozens of facility-months must say *which* member
broke, never surface a bare ``KeyError``.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.errors import (
    CatalogError,
    CatalogMemberError,
    StoreError,
    UnknownMemberError,
)
from repro.obs.tracer import trace_span
from repro.store.io import load_store
from repro.store.recordstore import RecordStore

_FORMAT = "repro-catalog-v1"

#: Version of the manifest schema; readers refuse newer manifests with a
#: typed error (mirrors the store meta's ``schema_version`` discipline).
CATALOG_SCHEMA_VERSION = 1

#: ``YYYY-MM`` or an inclusive range ``YYYY-MM:YYYY-MM``.
_PERIOD_RE = re.compile(r"^(\d{4})-(\d{2})$")

_MEMBER_KEYS = (
    "label", "kind", "location", "facility", "platform", "period",
    "schema_version", "generation", "rows", "jobs", "scale", "signature",
)


def _parse_period(period: str) -> tuple[int, int] | None:
    """Inclusive (first, last) month index of a period string, or None.

    ``""`` (unspecified) yields None — an unspecified period never
    participates in overlap checking. Malformed periods raise.
    """
    if not period:
        return None
    parts = period.split(":")
    if len(parts) > 2:
        raise CatalogError(
            f"malformed period {period!r}: want YYYY-MM or YYYY-MM:YYYY-MM"
        )
    months = []
    for part in parts:
        m = _PERIOD_RE.match(part)
        if m is None or not 1 <= int(m.group(2)) <= 12:
            raise CatalogError(
                f"malformed period {period!r}: want YYYY-MM or "
                "YYYY-MM:YYYY-MM (month 01-12)"
            )
        months.append(int(m.group(1)) * 12 + int(m.group(2)) - 1)
    lo, hi = months[0], months[-1]
    if hi < lo:
        raise CatalogError(f"period {period!r} ends before it starts")
    return lo, hi


@dataclass(frozen=True)
class CatalogMember:
    """One member of a :class:`StoreCatalog` (manifest row, immutable)."""

    label: str
    #: ``"store"`` (local file/directory) or ``"serve"`` (remote endpoint).
    kind: str
    #: Store path relative to the manifest directory, or ``host:port``.
    location: str
    facility: str = ""
    platform: str = ""
    period: str = ""
    schema_version: int = 1
    #: Bumped by :meth:`StoreCatalog.refresh` when the backing changed;
    #: part of every per-member cache key in the federation executor.
    generation: int = 0
    rows: int = 0
    jobs: int = 0
    scale: float = 1.0
    #: File fingerprint (sizes + mtimes) behind change detection;
    #: ``None`` for remote members.
    signature: tuple | None = field(default=None, compare=False)

    def to_json(self) -> dict:
        blob = {k: getattr(self, k) for k in _MEMBER_KEYS}
        blob["signature"] = list(self.signature) if self.signature else None
        return blob

    @classmethod
    def from_json(cls, path: str, blob: object) -> "CatalogMember":
        if not isinstance(blob, dict):
            raise CatalogError(f"{path}: catalog member must be a JSON object")
        missing = [k for k in ("label", "kind", "location") if k not in blob]
        if missing:
            raise CatalogError(
                f"{path}: catalog member missing key(s) {', '.join(missing)}"
            )
        if blob["kind"] not in ("store", "serve"):
            raise CatalogError(
                f"{path}: member {blob['label']!r} has unknown kind "
                f"{blob['kind']!r} (want 'store' or 'serve')"
            )
        known = {k: blob[k] for k in _MEMBER_KEYS if k in blob}
        sig = known.get("signature")
        known["signature"] = tuple(sig) if sig else None
        return cls(**known)

    @property
    def endpoint(self) -> tuple[str, int]:
        """(host, port) of a ``serve`` member."""
        host, _, port = self.location.rpartition(":")
        try:
            return host, int(port)
        except ValueError:
            raise CatalogError(
                f"member {self.label!r}: malformed endpoint "
                f"{self.location!r} (want host:port)"
            ) from None


def _store_signature(path: str) -> tuple | None:
    """(size, mtime_ns) fingerprint of a store's table files, or None."""
    targets = [path]
    if os.path.isdir(path):
        targets = [os.path.join(path, n)
                   for n in ("meta.json", "files.npy", "jobs.npy")]
    sig = []
    for target in targets:
        try:
            st = os.stat(target)
        except OSError:
            return None
        sig.append((os.path.basename(target), st.st_size, st.st_mtime_ns))
    return tuple(sig)


class StoreCatalog:
    """The manifest of member stores, with atomic add/remove/refresh.

    Not thread-safe for concurrent *mutation* (one operator edits a
    catalog); reading members is safe from any thread. All mutating
    methods persist the manifest before returning.
    """

    def __init__(self, path: str, members: dict[str, CatalogMember] | None = None):
        self.path = os.fspath(path)
        self._members: dict[str, CatalogMember] = dict(members or {})

    # -- persistence ---------------------------------------------------------
    @classmethod
    def init(cls, path: str) -> "StoreCatalog":
        """Create an empty catalog manifest at ``path``."""
        path = os.fspath(path)
        if os.path.exists(path):
            raise CatalogError(f"{path}: catalog already exists")
        catalog = cls(path)
        catalog.save()
        return catalog

    @classmethod
    def load(cls, path: str) -> "StoreCatalog":
        """Read a manifest written by :meth:`save` (typed errors only)."""
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                blob = json.load(fh)
        except FileNotFoundError:
            raise CatalogError(
                f"{path}: no catalog manifest (create one with "
                "'repro catalog init')"
            ) from None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CatalogError(f"{path}: corrupt catalog manifest ({exc})") from None
        if not isinstance(blob, dict) or blob.get("format") != _FORMAT:
            raise CatalogError(
                f"{path}: unknown catalog format "
                f"{blob.get('format') if isinstance(blob, dict) else blob!r}"
            )
        version = blob.get("schema_version", 1)
        if not isinstance(version, int) or version < 1:
            raise CatalogError(f"{path}: invalid schema_version {version!r}")
        if version > CATALOG_SCHEMA_VERSION:
            raise CatalogError(
                f"{path}: catalog schema_version {version} is newer than "
                f"this library supports ({CATALOG_SCHEMA_VERSION})"
            )
        members: dict[str, CatalogMember] = {}
        for entry in blob.get("members", []):
            member = CatalogMember.from_json(path, entry)
            if member.label in members:
                raise CatalogError(
                    f"{path}: duplicate member label {member.label!r}"
                )
            members[member.label] = member
        return cls(path, members)

    def save(self) -> None:
        """Atomically rewrite the manifest (tmp + rename)."""
        blob = {
            "format": _FORMAT,
            "schema_version": CATALOG_SCHEMA_VERSION,
            "members": [m.to_json() for m in self._members.values()],
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(blob, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    # -- membership ----------------------------------------------------------
    @property
    def members(self) -> list[CatalogMember]:
        """Members in manifest (addition) order."""
        return list(self._members.values())

    @property
    def labels(self) -> list[str]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[CatalogMember]:
        return iter(self._members.values())

    def member(self, label: str) -> CatalogMember:
        try:
            return self._members[label]
        except KeyError:
            raise UnknownMemberError(
                f"unknown member {label!r}; catalog has: "
                f"{', '.join(self._members) or '(empty)'}"
            ) from None

    def _check_new_label(self, label: str) -> None:
        if not label or "/" in label:
            raise CatalogError(
                f"invalid member label {label!r}: must be non-empty, no '/'"
            )
        if label in self._members:
            existing = self._members[label]
            raise CatalogError(
                f"duplicate member label {label!r} (already maps to "
                f"{existing.kind} {existing.location!r}); pick a distinct "
                "label or 'repro catalog remove' the old member first"
            )

    def add_store(
        self,
        label: str,
        store_path: str,
        *,
        facility: str = "",
        period: str = "",
    ) -> CatalogMember:
        """Add a local store member; probes the store for its metadata."""
        self._check_new_label(label)
        _parse_period(period)  # reject malformed periods at add time
        store_path = os.fspath(store_path)
        try:
            store = load_store(store_path)
        except (StoreError, FileNotFoundError) as exc:
            raise CatalogMemberError(label, f"cannot load {store_path}: {exc}") from None
        location = os.path.relpath(store_path, os.path.dirname(self.path) or ".")
        member = CatalogMember(
            label=label,
            kind="store",
            location=location,
            facility=facility,
            platform=store.platform,
            period=period,
            schema_version=store.schema_version,
            generation=0,
            rows=len(store.files),
            jobs=len(store.jobs),
            scale=store.scale,
            signature=_store_signature(store_path),
        )
        self._members[label] = member
        self.save()
        return member

    def add_endpoint(
        self,
        label: str,
        host: str,
        port: int,
        *,
        facility: str = "",
        period: str = "",
    ) -> CatalogMember:
        """Add a remote ``repro serve`` member; probes it over the wire."""
        self._check_new_label(label)
        _parse_period(period)
        from repro.serve.client import ServeClient

        try:
            with ServeClient(host, port) as client:
                stats = client.stats()
        except (OSError, StoreError) as exc:
            raise CatalogMemberError(
                label, f"cannot reach {host}:{port}: {exc}"
            ) from None
        remote = stats.get("store", {})
        member = CatalogMember(
            label=label,
            kind="serve",
            location=f"{host}:{port}",
            facility=facility,
            platform=str(remote.get("platform", "")),
            period=period,
            schema_version=CATALOG_SCHEMA_VERSION,
            generation=0,
            rows=int(remote.get("rows", 0)),
            jobs=int(remote.get("jobs", 0)),
        )
        self._members[label] = member
        self.save()
        return member

    def remove(self, label: str) -> CatalogMember:
        member = self.member(label)
        del self._members[label]
        self.save()
        return member

    # -- member access -------------------------------------------------------
    def store_path(self, label: str) -> str:
        """Absolute path of a ``store`` member's backing."""
        member = self.member(label)
        if member.kind != "store":
            raise CatalogMemberError(
                label, f"is a {member.kind!r} member, not a local store"
            )
        return os.path.join(os.path.dirname(self.path) or ".", member.location)

    def load_member(self, label: str) -> RecordStore:
        """Load a ``store`` member (typed errors carry the label)."""
        path = self.store_path(label)
        try:
            return load_store(path)
        except (StoreError, FileNotFoundError) as exc:
            raise CatalogMemberError(label, str(exc)) from None

    # -- refresh -------------------------------------------------------------
    def refresh(self, label: str | None = None) -> list[str]:
        """Re-fingerprint members; bump generations where backing changed.

        Returns the labels whose generation was bumped. Remote members
        refresh their row counts but keep their generation — their live
        generation is observed per query (the remote store's own
        counter), not recorded here.
        """
        targets = [self.member(label)] if label else self.members
        bumped: list[str] = []
        changed = False
        for member in targets:
            if member.kind != "store":
                continue
            path = os.path.join(
                os.path.dirname(self.path) or ".", member.location
            )
            signature = _store_signature(path)
            if signature == member.signature:
                continue
            try:
                store = load_store(path)
            except (StoreError, FileNotFoundError) as exc:
                raise CatalogMemberError(member.label, str(exc)) from None
            self._members[member.label] = replace(
                member,
                generation=member.generation + 1,
                rows=len(store.files),
                jobs=len(store.jobs),
                scale=store.scale,
                schema_version=store.schema_version,
                signature=signature,
            )
            bumped.append(member.label)
            changed = True
        if changed:
            self.save()
        return bumped

    # -- selection -----------------------------------------------------------
    def select(
        self,
        labels: list[str] | tuple[str, ...] | None = None,
        *,
        facility: str | None = None,
        platform: str | None = None,
        period: str | None = None,
    ) -> list[CatalogMember]:
        """Members matching every given axis, in manifest order.

        ``labels`` routes explicitly (unknown labels raise); the keyword
        axes filter. With no arguments, every member is selected.
        """
        if labels is not None:
            picked = [self.member(label) for label in labels]
        else:
            picked = self.members
        if facility is not None:
            picked = [m for m in picked if m.facility == facility]
        if platform is not None:
            picked = [m for m in picked if m.platform == platform]
        if period is not None:
            want = _parse_period(period)
            kept = []
            for m in picked:
                have = _parse_period(m.period)
                if want is None or (
                    have is not None and have[0] <= want[1] and want[0] <= have[1]
                ):
                    kept.append(m)
            picked = kept
        return picked

    # -- verification --------------------------------------------------------
    def verify(self) -> list[str]:
        """Problems with the catalog, each an actionable message.

        Checks every member's backing (loadable store / reachable
        endpoint), store schema-version consistency across members,
        period well-formedness, per-(facility, platform) period
        overlaps, and scale consistency. Returns ``[]`` when healthy.
        """
        problems: list[str] = []
        versions: dict[int, list[str]] = {}
        scales: dict[float, list[str]] = {}
        spans: dict[tuple[str, str], list[tuple[int, int, str]]] = {}
        with trace_span("catalog.verify", "federation") as sp:
            if sp is not None:
                sp.add(members=len(self._members))
            for member in self._members.values():
                try:
                    span = _parse_period(member.period)
                except CatalogError as exc:
                    problems.append(
                        f"member {member.label!r}: {exc} — fix the period "
                        "with 'repro catalog remove' + 'add'"
                    )
                    span = None
                if member.kind == "store":
                    try:
                        store = self.load_member(member.label)
                    except CatalogMemberError as exc:
                        problems.append(
                            f"{exc} — restore the file or 'repro catalog "
                            f"remove {member.label}'"
                        )
                        continue
                    versions.setdefault(store.schema_version, []).append(member.label)
                    scales.setdefault(store.scale, []).append(member.label)
                else:
                    from repro.serve.client import ServeClient

                    try:
                        host, port = member.endpoint
                        with ServeClient(host, port) as client:
                            client.stats()
                    except (OSError, CatalogError, StoreError) as exc:
                        problems.append(
                            f"member {member.label!r}: endpoint "
                            f"{member.location} unreachable ({exc}) — "
                            "restart the server or remove the member"
                        )
                        continue
                if span is not None:
                    key = (member.facility, member.platform)
                    for lo, hi, other in spans.get(key, []):
                        if span[0] <= hi and lo <= span[1]:
                            problems.append(
                                f"members {other!r} and {member.label!r} have "
                                f"overlapping periods on facility="
                                f"{member.facility!r} platform="
                                f"{member.platform!r}; split the months or "
                                "label one with a distinct facility"
                            )
                    spans.setdefault(key, []).append((span[0], span[1], member.label))
            if len(versions) > 1:
                detail = "; ".join(
                    f"v{v}: {', '.join(labels)}"
                    for v, labels in sorted(versions.items())
                )
                problems.append(
                    f"mixed store schema versions across members ({detail}); "
                    "re-save the older stores with this library to upgrade"
                )
            if len(scales) > 1:
                detail = "; ".join(
                    f"scale {s:g}: {', '.join(labels)}"
                    for s, labels in sorted(scales.items())
                )
                problems.append(
                    f"members were generated at different scales ({detail}); "
                    "scatter-gather totals would mix extrapolation factors"
                )
        return problems

    def __repr__(self) -> str:
        return f"StoreCatalog({self.path!r}, members={len(self._members)})"


def load_catalog(path: str) -> StoreCatalog:
    """Read a catalog manifest (the public-API spelling)."""
    return StoreCatalog.load(path)

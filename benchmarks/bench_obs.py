"""Tracing overhead: the cost of leaving instrumentation in hot paths.

Three measurements, one artifact (``BENCH_obs.json``, uploaded by CI):

- **disabled overhead** — the acceptance bar. The same cold-context
  analysis workload runs bare (no tracing calls at all) and through the
  instrumented idiom (``analysis_span`` + ``trace_span`` + the
  ``sp is not None`` guard) with no tracer installed. The instrumented
  form must cost <= 3% extra: tracing is permanently compiled into the
  pipeline, so its off state has to be free.
- **enabled overhead** — the same workload with a live tracer, for
  scale: what ``--trace`` actually costs (spans here wrap hundreds of
  milliseconds of numpy work, so this should also be small).
- **primitive + export costs** — ns per disabled/enabled span (tight
  loop, so per-op numbers stay meaningful as instrumentation density
  grows) and spans/second for both export formats.

The workload arms alternate (base, instrumented, base, ...) and report
medians, so slow drift (allocator state, thermal) cancels instead of
landing on one arm. The hard gate is the *attributable* overhead — the
measured ns/no-op-span times the spans the pass emits, over the pass
time — because the direct A-minus-B delta of a ~180 ms numpy workload
is dominated by +/-2-3% run noise (it comes out negative about half the
time); the delta is still recorded for the honest record, with a loose
sanity bound.
"""

from __future__ import annotations

import json
import statistics
import time

from conftest import write_bench_json

from repro.analysis import interface_usage, layer_volumes
from repro.analysis.context import AnalysisContext
from repro.obs import Tracer, analysis_span, set_tracer, trace_span
from repro.obs.export import ndjson_lines, to_chrome

#: Alternating pairs per arm; each runs a cold-context analysis pass
#: over the ~1e-3-scale store (hundreds of ms).
REPEATS = 7
MAX_DISABLED_OVERHEAD_PCT = 3.0
#: Loose sanity bound on the direct (noise-dominated) A-B delta.
MAX_MEASURED_DELTA_PCT = 10.0
#: Spans the instrumented pass emits (2 analysis_span + 1 trace_span).
SPANS_PER_PASS = 3
PRIMITIVE_OPS = 200_000
EXPORT_SPANS = 10_000


def _bare_pass(store):
    """The workload with no tracing code: the baseline."""
    ctx = AnalysisContext(store)
    layer_volumes(store, context=ctx)
    interface_usage(store, context=ctx)


def _instrumented_pass(store):
    """The same workload through the production instrumentation idiom."""
    ctx = AnalysisContext(store)
    with analysis_span("table3", ctx):
        layer_volumes(store, context=ctx)
    with analysis_span("table6", ctx):
        with trace_span("analysis.inner", "analysis") as sp:
            interface_usage(store, context=ctx)
            if sp is not None:
                sp.add(rows=len(store.files))


def _timed_ms(fn, *args) -> float:
    t0 = time.perf_counter_ns()
    fn(*args)
    return (time.perf_counter_ns() - t0) / 1e6


def _paired_median_ms(a, b, *args) -> tuple[float, float]:
    """Median per-pass time of two alternating arms."""
    times_a, times_b = [], []
    for _ in range(REPEATS):
        times_a.append(_timed_ms(a, *args))
        times_b.append(_timed_ms(b, *args))
    return statistics.median(times_a), statistics.median(times_b)


def _span_ns_per_op(n: int) -> float:
    t0 = time.perf_counter_ns()
    for _ in range(n):
        with trace_span("bench.op", "bench") as sp:
            if sp is not None:
                sp.add(i=1)
    return (time.perf_counter_ns() - t0) / n


def test_obs_overhead(summit_store, results_dir):
    store = summit_store
    _bare_pass(store)  # warm numpy, the store's columns, the allocator

    base_ms, disabled_ms = _paired_median_ms(
        _bare_pass, _instrumented_pass, store
    )
    noop_span_ns = _span_ns_per_op(PRIMITIVE_OPS)

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        enabled_ms = statistics.median(
            _timed_ms(_instrumented_pass, store) for _ in range(REPEATS)
        )
        enabled_span_ns = _span_ns_per_op(PRIMITIVE_OPS)
    finally:
        set_tracer(previous)

    # Export throughput over a dense synthetic trace.
    export_tracer = Tracer()
    for i in range(EXPORT_SPANS):
        export_tracer.record("bench.span", "bench", i * 1000, 500, i=i)
    t0 = time.perf_counter_ns()
    doc = to_chrome(export_tracer)
    json.dumps(doc)
    chrome_ms = (time.perf_counter_ns() - t0) / 1e6
    t0 = time.perf_counter_ns()
    for _ in ndjson_lines(export_tracer):
        pass
    ndjson_ms = (time.perf_counter_ns() - t0) / 1e6

    # Attributable cost: what the disabled instrumentation provably
    # adds (spans emitted x measured ns per no-op span).
    overhead_disabled_pct = (
        100.0 * (noop_span_ns * SPANS_PER_PASS) / (base_ms * 1e6)
    )
    measured_delta_pct = 100.0 * (disabled_ms - base_ms) / base_ms
    overhead_enabled_pct = 100.0 * (enabled_ms - base_ms) / base_ms
    payload = {
        "workload": "cold-context layer_volumes + interface_usage, summit 1e-3",
        "repeats": REPEATS,
        "base_ms": round(base_ms, 3),
        "disabled_ms": round(disabled_ms, 3),
        "enabled_ms": round(enabled_ms, 3),
        "overhead_disabled_pct": round(overhead_disabled_pct, 6),
        "measured_delta_pct": round(measured_delta_pct, 3),
        "overhead_enabled_pct": round(overhead_enabled_pct, 3),
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
        "noop_span_ns": round(noop_span_ns, 1),
        "enabled_span_ns": round(enabled_span_ns, 1),
        "spans_recorded_enabled": tracer.store.total,
        "spans_dropped_enabled": tracer.store.dropped,
        "export": {
            "spans": EXPORT_SPANS,
            "chrome_ms": round(chrome_ms, 3),
            "ndjson_ms": round(ndjson_ms, 3),
            "chrome_spans_per_s": int(EXPORT_SPANS / (chrome_ms / 1e3)),
            "ndjson_spans_per_s": int(EXPORT_SPANS / (ndjson_ms / 1e3)),
        },
    }
    write_bench_json(results_dir, "obs", payload)

    # The acceptance bar: disabled instrumentation is effectively free.
    assert overhead_disabled_pct <= MAX_DISABLED_OVERHEAD_PCT, payload
    # And the direct measurement, noise included, stays in bounds.
    assert measured_delta_pct <= MAX_MEASURED_DELTA_PCT, payload
    # The enabled path recorded what the instrumented pass emits:
    # REPEATS passes x 3 spans each, plus the primitive tight loop
    # (which overflows the ring — that's the bounded-memory design).
    assert tracer.store.total == REPEATS * 3 + PRIMITIVE_OPS
    # A disabled span must stay in the tens-of-ns regime.
    assert noop_span_ns < 2_000

"""Generator and pipeline throughput.

Not a paper exhibit — the engineering benchmark: how fast the vectorized
population generator and the ingest paths run. Keeps the hot paths honest
(a per-file Python loop sneaking into the generator would show up here as
an order-of-magnitude regression).
"""

from conftest import BENCH_SEED, write_result

from repro.instrument import LogMaterializer
from repro.platforms import cori
from repro.store.ingest import ingest_logs
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def test_generator_throughput(benchmark, results_dir):
    def run():
        gen = WorkloadGenerator("summit", GeneratorConfig(scale=5e-4))
        return generate_with_shadows(gen, BENCH_SEED)

    store = benchmark(run)
    rows_per_sec = len(store.files) / benchmark.stats["mean"]
    text = (
        f"Generator throughput: {len(store.files):,} file rows in "
        f"{benchmark.stats['mean']:.2f}s = {rows_per_sec:,.0f} rows/s"
    )
    write_result(results_dir, "generator_throughput", text)
    # Vectorization floor: a per-row Python loop runs ~10-50k rows/s;
    # the batch path must stay two orders of magnitude above that.
    assert rows_per_sec > 100_000


def test_object_path_throughput(benchmark, results_dir):
    machine = cori()
    gen = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5))
    store = generate_with_shadows(gen, BENCH_SEED)
    mat = LogMaterializer(machine, store)
    nlogs = 40

    def run():
        logs = mat.materialize_many(nlogs)
        return ingest_logs(
            logs, "cori", machine.mount_table(), domains=store.domains
        )

    ingested = benchmark(run)
    rate = len(ingested.files) / benchmark.stats["mean"]
    text = (
        f"Object path (materialize+ingest): {len(ingested.files):,} records "
        f"through {nlogs} logs in {benchmark.stats['mean']:.2f}s = "
        f"{rate:,.0f} records/s"
    )
    write_result(results_dir, "object_path_throughput", text)
    assert len(ingested.files) > 0

"""Generator and pipeline throughput.

Not a paper exhibit — the engineering benchmark: how fast the vectorized
population generator and the ingest paths run. Keeps the hot paths honest
(a per-file Python loop sneaking into the generator would show up here as
an order-of-magnitude regression).
"""

import os
import time

from conftest import BENCH_SEED, write_bench_json, write_result

from repro.instrument import LogMaterializer
from repro.platforms import cori
from repro.store.ingest import ingest_logs
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def test_generator_throughput(benchmark, results_dir):
    def run():
        gen = WorkloadGenerator("summit", GeneratorConfig(scale=5e-4))
        return generate_with_shadows(gen, BENCH_SEED)

    store = benchmark(run)
    rows_per_sec = len(store.files) / benchmark.stats["mean"]
    text = (
        f"Generator throughput: {len(store.files):,} file rows in "
        f"{benchmark.stats['mean']:.2f}s = {rows_per_sec:,.0f} rows/s"
    )
    write_result(results_dir, "generator_throughput", text)
    # Vectorization floor: a per-row Python loop runs ~10-50k rows/s;
    # the batch path must stay two orders of magnitude above that.
    assert rows_per_sec > 100_000


def test_sharded_generation_speedup(results_dir):
    """Serial vs 4-way sharded generation at the default study scale.

    Times one run each (the population is ~3M rows; pytest-benchmark's
    repeated rounds would dominate the suite) and records the honest
    numbers — including the core count, since the speedup is only
    meaningful on a multi-core runner. The floor scales with the
    machine — ≥ 0.7 · min(jobs, cores), i.e. 70% parallel efficiency —
    and is asserted where 4 cores exist; on smaller runners the
    artifact still documents the overhead of the sharded path.
    """
    gen = WorkloadGenerator("summit", GeneratorConfig())
    jobs = 4

    t0 = time.perf_counter()
    serial = generate_with_shadows(gen, BENCH_SEED, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = generate_with_shadows(gen, BENCH_SEED, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    assert len(sharded.files) == len(serial.files)
    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    floor = 0.7 * min(jobs, cores)
    write_bench_json(
        results_dir,
        "generate",
        {
            "platform": "summit",
            "scale": gen.config.scale,
            "rows": len(serial.files),
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "jobs": jobs,
            "speedup": round(speedup, 3),
            "speedup_floor": round(floor, 3),
            "cpu_count": cores,
            "rows_per_second_serial": round(len(serial.files) / serial_s),
            "rows_per_second_parallel": round(len(sharded.files) / parallel_s),
        },
    )
    if cores >= 4:
        assert speedup >= floor, (
            f"{jobs}-way sharding only {speedup:.2f}x faster "
            f"(floor {floor:.2f}x on {cores} cores)"
        )


def test_object_path_throughput(benchmark, results_dir):
    machine = cori()
    gen = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5))
    store = generate_with_shadows(gen, BENCH_SEED)
    mat = LogMaterializer(machine, store)
    nlogs = 40

    def run():
        logs = mat.materialize_many(nlogs)
        return ingest_logs(
            logs, "cori", machine.mount_table(), domains=store.domains
        )

    ingested = benchmark(run)
    rate = len(ingested.files) / benchmark.stats["mean"]
    text = (
        f"Object path (materialize+ingest): {len(ingested.files):,} records "
        f"through {nlogs} logs in {benchmark.stats['mean']:.2f}s = "
        f"{rate:,.0f} records/s"
    )
    write_result(results_dir, "object_path_throughput", text)
    assert len(ingested.files) > 0

"""Ablations over the design choices DESIGN.md calls out.

1. **STDIO buffering off** — drop the FILE* coalescing and latency hiding:
   the Figure 11/12 contrasts should *widen* dramatically, showing the
   buffered-stream model (not the caps alone) produces the paper's
   moderate small-transfer gaps.
2. **Stream caps equalized** — give STDIO the POSIX caps: the PFS read gap
   should collapse toward parallelism-only, showing the per-stream cap is
   what separates the interfaces at low parallelism.
3. **Scale invariance** — CDF shapes and dominance ratios measured at two
   different scales must agree: the scale knob changes counts, not shapes
   (DESIGN.md §5).
"""

import numpy as np
from conftest import BENCH_SEED, write_result

from repro.analysis import layer_volumes, performance_by_bin, transfer_cdfs
from repro.analysis.performance import panel
from repro.iosim import perfmodel as pm
from repro.iosim.perfmodel import PerfModel, StreamCaps
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def _summit(scale=5e-4, perf=None):
    gen = WorkloadGenerator("summit", GeneratorConfig(scale=scale), perf=perf)
    return generate_with_shadows(gen, BENCH_SEED)


def test_ablation_stdio_buffering(benchmark, results_dir):
    """Without buffering, STDIO collapses to raw tiny syscalls."""

    def build():
        store = _summit(perf=PerfModel(stdio_buffering=False))
        baseline = _summit()
        return store, baseline

    no_buffer, baseline = benchmark.pedantic(build, rounds=1, iterations=1)
    base_gap = panel(
        performance_by_bin(baseline), "pfs", "read"
    ).median_speedup("100M_1G")
    nobuf_gap = panel(
        performance_by_bin(no_buffer), "pfs", "read"
    ).median_speedup("100M_1G")
    text = "\n".join(
        [
            "Ablation 1 - STDIO buffering",
            f"  PFS read 100M-1G POSIX/STDIO gap with buffering: {base_gap:.1f}x",
            f"  ... without buffering: {nobuf_gap:.1f}x",
            "  expectation: gap widens by >3x without buffering",
        ]
    )
    write_result(results_dir, "ablation_stdio_buffering", text)
    assert nobuf_gap > base_gap * 3


def test_ablation_equal_stream_caps(benchmark, results_dir):
    """Equal caps: the interface gap at low parallelism collapses."""

    def build():
        caps = dict(pm.DEFAULT_CAPS)
        g = caps["GPFS"]
        caps["GPFS"] = StreamCaps(
            posix_read=g.posix_read, posix_write=g.posix_write,
            stdio_read=g.posix_read, stdio_write=g.posix_write,
            latency=g.latency, sigma=g.sigma,
        )
        n = caps["NVMe"]
        caps["NVMe"] = StreamCaps(
            posix_read=n.posix_read, posix_write=n.posix_write,
            stdio_read=n.posix_read, stdio_write=n.posix_write,
            latency=n.latency, sigma=n.sigma,
        )
        return _summit(perf=PerfModel(caps=caps)), _summit()

    equal, baseline = benchmark.pedantic(build, rounds=1, iterations=1)
    base_gap = panel(
        performance_by_bin(baseline), "insystem", "read"
    ).median_speedup("100M_1G")
    equal_gap = panel(
        performance_by_bin(equal), "insystem", "read"
    ).median_speedup("100M_1G")
    text = "\n".join(
        [
            "Ablation 2 - equalized stream caps (SCNL reads, 100M-1G)",
            f"  default caps gap: {base_gap:.2f}x",
            f"  equal caps gap:   {equal_gap:.2f}x",
            "  expectation: gap shrinks toward ~1x with equal caps",
        ]
    )
    write_result(results_dir, "ablation_equal_caps", text)
    assert equal_gap < base_gap * 0.7


def test_ablation_scale_invariance(benchmark, results_dir):
    """Shapes are scale-free; counts scale linearly (DESIGN.md §5)."""

    def build():
        return _summit(scale=4e-4), _summit(scale=1.2e-3)

    small, large = benchmark.pedantic(build, rounds=1, iterations=1)
    vol_s, vol_l = layer_volumes(small), layer_volumes(large)
    cdf_s = {
        (c.layer, c.direction): c.percent_below(1e9)
        for c in transfer_cdfs(small)
    }
    cdf_l = {
        (c.layer, c.direction): c.percent_below(1e9)
        for c in transfer_cdfs(large)
    }
    lines = ["Ablation 3 - scale invariance (summit, 4e-4 vs 1.2e-3)"]
    lines.append(
        f"  extrapolated PFS files: {vol_s.pfs.files / small.scale:.3e} vs "
        f"{vol_l.pfs.files / large.scale:.3e}"
    )
    for key in cdf_s:
        lines.append(
            f"  <1GB {key}: {cdf_s[key]:.2f}% vs {cdf_l.get(key, float('nan')):.2f}%"
        )
    write_result(results_dir, "ablation_scale", "\n".join(lines))

    ratio = (vol_s.pfs.files / small.scale) / (vol_l.pfs.files / large.scale)
    assert 0.8 < ratio < 1.25
    for key, val in cdf_s.items():
        if key in cdf_l:
            assert abs(val - cdf_l[key]) < 2.5, key

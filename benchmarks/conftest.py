"""Shared bench fixtures.

Every bench regenerates one exhibit of the paper from the same two
synthetic year-long stores (one per platform), times the analysis with
pytest-benchmark, verifies the exhibit's headline shape, and writes the
rendered table to ``benchmarks/results/<exhibit>.txt`` so the run leaves
a reviewable artifact (pytest captures stdout).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import CharacterizationStudy, StudyConfig

#: Bench scale: ~1/1000 of each platform's year. Big enough for stable
#: shapes (the shape checks pass across seeds at this scale), small
#: enough to regenerate in seconds.
BENCH_SCALE = 1e-3
BENCH_SEED = 20220627

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def study():
    return CharacterizationStudy(
        StudyConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    )


@pytest.fixture(scope="session")
def summit_store(study):
    return study.store("summit")


@pytest.fixture(scope="session")
def cori_store(study):
    return study.store("cori")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    """Persist a rendered exhibit for post-run review."""
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    print(text)


def write_bench_json(results_dir: str, name: str, payload: dict) -> str:
    """Persist a machine-readable benchmark record (BENCH_<name>.json).

    Dashboards and CI trend lines read these instead of scraping the
    rendered .txt artifacts.
    """
    path = os.path.join(results_dir, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return path

"""Table 3: files and transfer volume per storage layer — finding A."""

from conftest import write_result

from repro.analysis import layer_volumes
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_table3(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [layer_volumes(summit_store), layer_volumes(cori_store)]
    )
    text = render_results(
        "Table 3 - files and transfer volume per layer",
        HEADERS["table3"],
        results,
    )
    lines = [text, "", "headline ratios (paper vs measured):"]
    for r in results:
        for layer, row in (("insystem", r.insystem), ("pfs", r.pfs)):
            paper = exp.READ_OVER_WRITE[(r.platform, layer)]
            lines.append(
                f"  {r.platform} {layer}: R/W paper {paper:.3f} "
                f"measured {row.read_write_ratio():.3f}"
            )
        lines.append(
            f"  {r.platform} PFS/in-system files: paper "
            f"{exp.PFS_OVER_INSYSTEM_FILES[r.platform]:.2f}x measured "
            f"{r.pfs_over_insystem_files():.2f}x"
        )
    write_result(results_dir, "table3", "\n".join(lines))

    summit, cori = results
    # Finding A: Summit's layers show opposite dominance; Cori reads win.
    assert summit.insystem.read_write_ratio() > 1.2
    assert summit.pfs.read_write_ratio() < 0.1
    assert cori.insystem.read_write_ratio() > 1.2
    assert cori.pfs.read_write_ratio() > 2.0
    # Finding C: PFS far more popular on both systems.
    assert summit.pfs_over_insystem_files() > 1.5
    assert cori.pfs_over_insystem_files() > 10

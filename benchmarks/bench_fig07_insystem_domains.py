"""Figure 7: in-system layer usage across science domains."""

from conftest import write_result

from repro.analysis import insystem_domain_usage
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_fig7(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [
            insystem_domain_usage(summit_store),
            insystem_domain_usage(cori_store),
        ]
    )
    text = render_results(
        "Figure 7 - in-system usage by science domain",
        HEADERS["fig7"],
        results,
    )
    summit, cori = results
    lines = [
        text,
        "",
        f"summit CS+physics SCNL job share: paper ~60%, measured "
        f"{100 * summit.job_share('computer science', 'physics'):.1f}% "
        f"(over {summit.jobs_total} SCNL jobs)",
        f"cori top CBB domains: read={cori.top_domain('read')!r} "
        f"write={cori.top_domain('write')!r} (paper: physics, 71.95%)",
        f"cori physics share of CBB transfer: "
        f"{100 * cori.domain_share('physics'):.1f}%",
    ]
    write_result(results_dir, "fig07", "\n".join(lines))

    # Widespread domain usage on both in-system layers.
    assert len([d for d in summit.volumes if d]) >= 3
    assert len([d for d in cori.volumes if d]) >= 8
    # Physics carries the most CBB transfer.
    assert cori.domain_share("physics") > 0.25

"""Figure 5: request-size CDFs restricted to jobs with >1,024 processes."""

from conftest import write_result

from repro.analysis import request_cdfs
from repro.analysis.report import HEADERS, render_results


def test_fig5(benchmark, summit_store, cori_store, results_dir):
    curves = benchmark(
        lambda: request_cdfs(summit_store, large_jobs_only=True)
        + request_cdfs(cori_store, large_jobs_only=True)
    )
    text = render_results(
        "Figure 5 - request-size CDFs, jobs with >1024 processes",
        HEADERS["fig4"],
        curves,
    )
    write_result(results_dir, "fig05", text)

    by = {(c.platform, c.layer, c.direction): c for c in curves}
    all_curves = request_cdfs(summit_store) + request_cdfs(cori_store)
    by_all = {(c.platform, c.layer, c.direction): c for c in all_curves}
    # Paper: "the same trend in request sizes to the PFS in both systems,
    # indicating that the initially reported results are not due to a lot
    # of small jobs but rather a system-level trend" — the large-job PFS
    # read curve matches the all-jobs curve.
    for platform in ("summit", "cori"):
        c = by.get((platform, "pfs", "read"))
        assert c is not None, f"{platform} large jobs missing"
        baseline = by_all[(platform, "pfs", "read")]
        assert abs(c.cumulative_percent[4] - baseline.cumulative_percent[4]) < 10
        assert c.cumulative_percent[4] > 60  # small requests still dominate
    # ...and "more large requests to the in-system storage layer": the
    # in-system read curves rise later than the PFS read curves.
    for platform, bin_idx in (("summit", 2), ("cori", 4)):
        pfs = by.get((platform, "pfs", "read"))
        ins = by.get((platform, "insystem", "read"))
        if pfs is not None and ins is not None:
            assert ins.cumulative_percent[bin_idx] < pfs.cumulative_percent[bin_idx]

"""Figure 11: Summit POSIX vs STDIO bandwidth by transfer-size bin."""

import math

from conftest import write_result

from repro.analysis import performance_by_bin
from repro.analysis.performance import panel
from repro.analysis.report import HEADERS, render_results


def test_fig11(benchmark, summit_store, results_dir):
    panels = benchmark(lambda: performance_by_bin(summit_store))
    text = render_results(
        "Figure 11 - Summit shared-file bandwidth, POSIX vs STDIO",
        HEADERS["fig11"],
        panels,
    )
    pfs_read = panel(panels, "pfs", "read")
    scnl_read = panel(panels, "insystem", "read")
    scnl_write = panel(panels, "insystem", "write")
    lines = [
        text,
        "",
        "median POSIX/STDIO speedups (paper -> measured):",
        f"  PFS read 100M-1G (paper ~3x): "
        f"{pfs_read.median_speedup('100M_1G'):.2f}x",
        f"  PFS read 100G-1T (paper ~40x): "
        f"{pfs_read.median_speedup('100G_1T'):.2f}x",
        f"  SCNL read 100M-1G (paper ~5x): "
        f"{scnl_read.median_speedup('100M_1G'):.2f}x",
        f"  SCNL write 100M-1G (paper: STDIO 1.5x faster): "
        f"{scnl_write.median_speedup('100M_1G'):.2f}x",
    ]
    write_result(results_dir, "fig11", "\n".join(lines))

    # Finding E: POSIX generally beats STDIO; reads more than writes;
    # SCNL writes are where STDIO fights back.
    small = pfs_read.median_speedup("100M_1G")
    assert small > 1.5
    big = pfs_read.median_speedup("100G_1T")
    if math.isfinite(big):
        assert big > small * 0.8 or big > 5.0
    assert scnl_read.median_speedup("100M_1G") > 1.5
    sw = scnl_write.median_speedup("100M_1G")
    if math.isfinite(sw):
        assert sw < 1.2  # STDIO at least competitive

"""Figure 12: Cori POSIX vs STDIO bandwidth by transfer-size bin."""

import math

from conftest import write_result

from repro.analysis import performance_by_bin
from repro.analysis.performance import panel
from repro.analysis.report import HEADERS, render_results


def test_fig12(benchmark, cori_store, results_dir):
    panels = benchmark(lambda: performance_by_bin(cori_store))
    text = render_results(
        "Figure 12 - Cori shared-file bandwidth, POSIX vs STDIO",
        HEADERS["fig11"],
        panels,
    )
    pfs_read = panel(panels, "pfs", "read")
    pfs_write = panel(panels, "pfs", "write")
    lines = [
        text,
        "",
        "median POSIX/STDIO speedups (paper -> measured):",
        f"  PFS read 1G-10G (paper 6.78x): "
        f"{pfs_read.median_speedup('1G_10G'):.2f}x",
        f"  PFS read 10G-100G (paper 2.9x): "
        f"{pfs_read.median_speedup('10G_100G'):.2f}x",
        f"  PFS write 100M-1G (paper 3.67x): "
        f"{pfs_write.median_speedup('100M_1G'):.2f}x",
        f"  PFS write 1G-10G (paper 2.02x): "
        f"{pfs_write.median_speedup('1G_10G'):.2f}x",
    ]
    write_result(results_dir, "fig12", "\n".join(lines))

    # POSIX wins Cori PFS reads and writes in the populated bins.
    read_ratios = [
        pfs_read.median_speedup(b) for b in ("100M_1G", "1G_10G", "10G_100G")
    ]
    finite_reads = [r for r in read_ratios if math.isfinite(r)]
    assert finite_reads and all(r > 1.5 for r in finite_reads)
    write_ratios = [
        pfs_write.median_speedup(b) for b in ("100M_1G", "1G_10G")
    ]
    finite_writes = [r for r in write_ratios if math.isfinite(r)]
    assert finite_writes and all(r > 1.2 for r in finite_writes)

"""What-if sweep benchmark: throughput, fan-out speedup, cache economics.

Three gates, mirroring the subsystem's acceptance bar:

- **identity** — the materialized identity twin must be bit-identical
  to the source store (the calibration zero; a hard assert, not a
  trend line);
- **sweep** — replay throughput (rows x points / s) serial vs pooled,
  with the pooled results required byte-equal to serial;
- **serve** — every scenario queried twice through a
  :class:`QueryEngine`: the second pass must be all cache hits, and the
  hit-rate/latency split lands in ``BENCH_whatif.json`` (the artifact
  CI uploads).
"""

from __future__ import annotations

import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro.serve import QueryEngine
from repro.whatif import materialize, scenario_catalog, sweep

#: One sweep axis wide enough to keep several workers busy.
SWEEP_POINTS = [{"factor": f} for f in (0.25, 0.5, 2.0, 4.0, 8.0, 16.0)]


def _timed_sweep(store, *, jobs: int):
    t0 = time.perf_counter()
    reports = sweep(store, "stripe", SWEEP_POINTS, jobs=jobs)
    return reports, time.perf_counter() - t0


def test_whatif_sweep(summit_store, results_dir):
    rows = len(summit_store.files)

    # Gate 1: the twin reads zero on a blank.
    t0 = time.perf_counter()
    twin = materialize(summit_store, "identity")
    identity_seconds = time.perf_counter() - t0
    assert twin.files.tobytes() == summit_store.files.tobytes()
    assert twin.jobs.tobytes() == summit_store.jobs.tobytes()

    # Gate 2: pooled sweep equals serial, and we record the speedup.
    serial, serial_s = _timed_sweep(summit_store, jobs=1)
    pooled, pooled_s = _timed_sweep(summit_store, jobs=0)
    assert pooled == serial

    # Gate 3: second pass over every scenario is all cache hits.
    scenarios = sorted(scenario_catalog())
    with QueryEngine(summit_store, max_workers=2) as engine:
        t0 = time.perf_counter()
        cold = [engine.query(f"whatif_{n}", timeout=600) for n in scenarios]
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = [engine.query(f"whatif_{n}", timeout=600) for n in scenarios]
        warm_s = time.perf_counter() - t0
        counters = engine.stats()["counters"]
    assert warm == cold
    assert counters["cache_hits"] >= len(scenarios)

    payload = {
        "platform": "summit",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "rows": rows,
        "identity": {
            "seconds": round(identity_seconds, 4),
            "bit_identical": True,
        },
        "sweep": {
            "points": len(SWEEP_POINTS),
            "serial_seconds": round(serial_s, 4),
            "pooled_seconds": round(pooled_s, 4),
            "speedup": round(serial_s / pooled_s, 2) if pooled_s else 0.0,
            "rows_per_second": round(rows * len(SWEEP_POINTS) / serial_s, 1),
            "pooled_equals_serial": True,
        },
        "serve": {
            "scenarios": len(scenarios),
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s else 0.0,
            "cache_hits": int(counters["cache_hits"]),
            "cache_misses": int(counters.get("cache_misses", 0)),
        },
    }
    write_bench_json(results_dir, "whatif", payload)

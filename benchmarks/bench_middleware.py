"""Middleware experiments: HDF5-style aggregation on vs off.

The follow-on experiment Recommendations 4/6 define: run the same
row-wise checkpoint writer through the HDF5-like library with middleware
aggregation enabled and disabled, and measure what the paper's metrics
(operation counts, priced time, flash write amplification) say.
"""

from conftest import write_result

from repro.darshan.stdio_ext import accumulate_stdio_ext
from repro.middleware import H5File
from repro.platforms import summit
from repro.units import MiB


def _writer(aggregate, layer="pfs"):
    f = H5File(
        summit(), layer, "/gpfs/alpine/sim/ckpt.h5",
        aggregate=aggregate, cache_chunk_bytes=1 * MiB,
    )
    d = f.create_dataset("field", (8192, 512), itemsize=8)  # 32 MiB
    for row in range(8192):
        d.write_slab((row, 0), (1, 512))
    return f.close()


def test_aggregation_on_vs_off(benchmark, results_dir):
    raw, agg = benchmark.pedantic(
        lambda: (_writer(False), _writer(True)), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "HDF5-style middleware aggregation (row-wise 4 KiB checkpoint writer)",
            f"  downstream writes: {raw.downstream_writes} -> "
            f"{agg.downstream_writes} ({agg.aggregation_factor:.0f}x fewer)",
            f"  priced write time: {raw.write_seconds:.3f}s -> "
            f"{agg.write_seconds:.3f}s "
            f"({raw.write_seconds / agg.write_seconds:.1f}x faster)",
        ]
    )
    write_result(results_dir, "middleware_aggregation", text)
    assert agg.downstream_writes < raw.downstream_writes / 50
    assert agg.write_seconds < raw.write_seconds / 5

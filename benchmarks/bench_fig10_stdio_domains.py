"""Figure 10: STDIO transfer grouped by science domain — finding D."""

from conftest import write_result

from repro.analysis import stdio_domain_usage
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_fig10(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [
            stdio_domain_usage(summit_store),
            stdio_domain_usage(cori_store),
        ]
    )
    text = render_results(
        "Figure 10 - STDIO transfer by science domain",
        HEADERS["fig7"],
        results,
    )
    summit, cori = results
    lines = [
        text,
        "",
        f"cori STDIO jobs with a domain: paper "
        f"{100 * exp.CORI_STDIO_DOMAIN_COVERAGE:.2f}% measured "
        f"{100 * cori.domain_coverage():.2f}%",
        f"summit STDIO domains with traffic: "
        f"{len([d for d in summit.volumes if d])}",
    ]
    write_result(results_dir, "fig10", "\n".join(lines))

    # STDIO usage is widespread across domains on both platforms.
    assert len([d for d in summit.volumes if d]) >= 8
    assert len([d for d in cori.volumes if d]) >= 8
    assert 0.84 < cori.domain_coverage() < 0.96
    # Summit logging/visualization traffic exists in both directions.
    total_r = sum(r for r, _ in summit.volumes.values())
    total_w = sum(w for _, w in summit.volumes.values())
    assert total_r > 0 and total_w > 0

"""Figure 8: RO/RW/WO classification for STDIO-only files."""

from conftest import write_result

from repro.analysis import file_classification
from repro.analysis.report import HEADERS, render_results


def test_fig8(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [
            file_classification(summit_store, stdio_only=True),
            file_classification(cori_store, stdio_only=True),
        ]
    )
    all_results = [
        file_classification(summit_store),
        file_classification(cori_store),
    ]
    text = render_results(
        "Figure 8 - file classification, STDIO only",
        HEADERS["fig6"],
        results,
    )
    lines = [text, "", "in-system share of files, STDIO vs all interfaces:"]
    for stdio_fc, all_fc in zip(results, all_results):
        for cls in ("read-only", "read-write", "write-only"):
            lines.append(
                f"  {stdio_fc.platform} {cls}: stdio "
                f"{100 * stdio_fc.insystem_share(cls):.1f}% vs all "
                f"{100 * all_fc.insystem_share(cls):.1f}%"
            )
    write_result(results_dir, "fig08", "\n".join(lines))

    # The paper's Figure 8 finding: STDIO-managed files use the in-system
    # layer relatively much more than the overall population does.
    summit_stdio, _ = results
    summit_all, _ = all_results
    for cls in ("read-only", "write-only"):
        assert (
            summit_stdio.insystem_share(cls)
            > summit_all.insystem_share(cls)
        ), cls

"""Sharded analysis throughput: serial vs fan-out cold context.

Not a paper exhibit — the engineering benchmark for the shard fabric's
read side (DESIGN.md §12). Runs the heavy analysis entry points twice
over the same bench-scale store, each time through a *cold* context:
once serial, once sharded at jobs=4 with a pre-warmed worker pool (pool
startup is amortized across a session, so steady-state is the honest
comparison; the JSON artifact records the pool warm-up cost
separately). The speedup gate only binds on runners with ≥ 4 cores —
on smaller machines the artifact still documents the fan-out overhead.
"""

import os
import time

from conftest import write_bench_json

from repro import analysis
from repro.parallel import shutdown_pools, warm_pool
from repro.store.recordstore import RecordStore

JOBS = 4

#: The entry points that dominate a full-study analysis pass: every
#: primitive kind (masks, gathers, histogram-bin sums, bandwidth) is
#: exercised by at least one of them.
ENTRY_POINTS = (
    ("transfer_cdfs", analysis.transfer_cdfs),
    ("interface_transfer_cdfs", analysis.interface_transfer_cdfs),
    ("request_cdfs", analysis.request_cdfs),
    ("file_classification", analysis.file_classification),
    ("insystem_domain_usage", analysis.insystem_domain_usage),
    ("performance_by_bin", analysis.performance_by_bin),
    ("bandwidth_variability", analysis.bandwidth_variability),
)


def _fresh_copy(store, jobs=None):
    """A cold-context store sharing the fixture's (read-only) tables."""
    copy = RecordStore(
        store.platform,
        store.files,
        store.jobs,
        domains=store.domains,
        extensions=store.extensions,
        scale=store.scale,
    )
    if jobs is not None:
        copy.set_analysis_jobs(jobs)
    return copy


def _run_all(store) -> float:
    t0 = time.perf_counter()
    for _, fn in ENTRY_POINTS:
        fn(store)
    return time.perf_counter() - t0


def test_sharded_analysis_speedup(summit_store, results_dir):
    serial_s = _run_all(_fresh_copy(summit_store))

    t0 = time.perf_counter()
    warm_pool(JOBS)
    warm_s = time.perf_counter() - t0

    sharded = _fresh_copy(summit_store, jobs=JOBS)
    try:
        parallel_s = _run_all(sharded)
    finally:
        sharded.analysis().close()
        shutdown_pools()

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    write_bench_json(
        results_dir,
        "analysis_parallel",
        {
            "platform": "summit",
            "rows": len(summit_store.files),
            "entry_points": [name for name, _ in ENTRY_POINTS],
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "pool_warm_seconds": round(warm_s, 3),
            "jobs": JOBS,
            "speedup": round(speedup, 3),
            "cpu_count": cores,
        },
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"{JOBS}-way sharded analysis only {speedup:.2f}x faster"
        )

"""Facility-level experiments: layer demand replay and variability.

Follow-on analyses the paper's conclusions motivate: the operator's
aggregate view of the unbalanced layers (replay), and the production-load
variability signature behind the Figure 11/12 whiskers (TOKIO-flavored).
"""

from conftest import write_result

from repro.analysis import bandwidth_variability, median_iqr_ratio
from repro.analysis.report import render_table
from repro.iosim.replay import FacilityReplay
from repro.platforms import cori, summit


def test_facility_replay(benchmark, summit_store, cori_store, results_dir):
    def run():
        return [
            FacilityReplay(summit_store, summit()),
            FacilityReplay(cori_store, cori()),
        ]

    replays = benchmark(run)
    rows = []
    for r in replays:
        rows.extend(r.summary_rows())
    text = render_table(
        ["system", "layer", "dir", "mean util", "peak util", ">80% of time"],
        rows,
        title="Facility replay - layer demand vs capacity",
    )
    write_result(results_dir, "facility_replay", text)

    summit_replay, cori_replay = replays
    # The unbalanced-layers finding, facility view: PFS carries far more
    # relative load than the in-system layer on both platforms.
    for replay in replays:
        pfs = replay.demand("pfs", "write").mean_utilization() + replay.demand(
            "pfs", "read"
        ).mean_utilization()
        ins = replay.demand("insystem", "write").mean_utilization() + replay.demand(
            "insystem", "read"
        ).mean_utilization()
        assert pfs > 3 * ins, replay.store.platform
    # Summit's write demand is bursty: peaks far above the mean.
    pfs_w = summit_replay.demand("pfs", "write")
    assert pfs_w.peak_utilization() > 3 * pfs_w.mean_utilization()


def test_bandwidth_variability(benchmark, summit_store, cori_store, results_dir):
    def run():
        return (
            bandwidth_variability(summit_store),
            bandwidth_variability(cori_store),
        )

    summit_cells, cori_cells = benchmark(run)
    lines = ["Production-load variability (shared files)"]
    for name, cells in (("summit", summit_cells), ("cori", cori_cells)):
        lines.append(
            f"  {name}: {len(cells)} populated cells, median IQR ratio "
            f"{median_iqr_ratio(cells):.2f}"
        )
        for c in cells[:6]:
            lines.append(
                f"    {c.layer:9s} {c.interface:6s} {c.direction:5s} "
                f"{c.bin_label:8s}: n={c.n:5d} median "
                f"{c.median / 1e6:9.1f} MB/s IQR ratio {c.iqr_ratio:5.2f} "
                f"p90/p10 {c.p90_over_p10:6.2f}"
            )
    write_result(results_dir, "facility_variability", "\n".join(lines))

    # The paper's box plots span multiples under production load.
    assert median_iqr_ratio(summit_cells) > 1.5
    assert median_iqr_ratio(cori_cells) > 1.5
    # PFS populations vary more than in-system ones (shared vs exclusive).
    pfs = [c.iqr_ratio for c in summit_cells if c.layer == "pfs"]
    ins = [c.iqr_ratio for c in summit_cells if c.layer == "insystem"]
    if pfs and ins:
        assert sorted(pfs)[len(pfs) // 2] > sorted(ins)[len(ins) // 2]

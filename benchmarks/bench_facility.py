"""Facility-level experiments: layer demand replay and variability.

Follow-on analyses the paper's conclusions motivate: the operator's
aggregate view of the unbalanced layers (replay), and the production-load
variability signature behind the Figure 11/12 whiskers (TOKIO-flavored).
"""

import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json, write_result

from repro.analysis import (
    bandwidth_variability,
    layer_volumes,
    median_iqr_ratio,
    performance_by_bin,
    request_cdfs,
    transfer_cdfs,
)
from repro.analysis.report import render_table
from repro.iosim.replay import FacilityReplay
from repro.platforms import cori, summit


def test_facility_replay(benchmark, summit_store, cori_store, results_dir):
    def run():
        return [
            FacilityReplay(summit_store, summit()),
            FacilityReplay(cori_store, cori()),
        ]

    replays = benchmark(run)
    rows = []
    for r in replays:
        rows.extend(r.summary_rows())
    text = render_table(
        ["system", "layer", "dir", "mean util", "peak util", ">80% of time"],
        rows,
        title="Facility replay - layer demand vs capacity",
    )
    write_result(results_dir, "facility_replay", text)

    summit_replay, cori_replay = replays
    # The unbalanced-layers finding, facility view: PFS carries far more
    # relative load than the in-system layer on both platforms.
    for replay in replays:
        pfs = replay.demand("pfs", "write").mean_utilization() + replay.demand(
            "pfs", "read"
        ).mean_utilization()
        ins = replay.demand("insystem", "write").mean_utilization() + replay.demand(
            "insystem", "read"
        ).mean_utilization()
        assert pfs > 3 * ins, replay.store.platform
    # Summit's write demand is bursty: peaks far above the mean.
    pfs_w = summit_replay.demand("pfs", "write")
    assert pfs_w.peak_utilization() > 3 * pfs_w.mean_utilization()


def test_bandwidth_variability(benchmark, summit_store, cori_store, results_dir):
    def run():
        return (
            bandwidth_variability(summit_store),
            bandwidth_variability(cori_store),
        )

    summit_cells, cori_cells = benchmark(run)
    lines = ["Production-load variability (shared files)"]
    for name, cells in (("summit", summit_cells), ("cori", cori_cells)):
        lines.append(
            f"  {name}: {len(cells)} populated cells, median IQR ratio "
            f"{median_iqr_ratio(cells):.2f}"
        )
        for c in cells[:6]:
            lines.append(
                f"    {c.layer:9s} {c.interface:6s} {c.direction:5s} "
                f"{c.bin_label:8s}: n={c.n:5d} median "
                f"{c.median / 1e6:9.1f} MB/s IQR ratio {c.iqr_ratio:5.2f} "
                f"p90/p10 {c.p90_over_p10:6.2f}"
            )
    write_result(results_dir, "facility_variability", "\n".join(lines))

    # The paper's box plots span multiples under production load.
    assert median_iqr_ratio(summit_cells) > 1.5
    assert median_iqr_ratio(cori_cells) > 1.5
    # PFS populations vary more than in-system ones (shared vs exclusive).
    pfs = [c.iqr_ratio for c in summit_cells if c.layer == "pfs"]
    ins = [c.iqr_ratio for c in summit_cells if c.layer == "insystem"]
    if pfs and ins:
        assert sorted(pfs)[len(pfs) // 2] > sorted(ins)[len(ins) // 2]


def _four_analyses(store):
    """The stress test's analysis set (one per exhibit family)."""
    layer_volumes(store)
    transfer_cdfs(store)
    request_cdfs(store)
    performance_by_bin(store)


def test_analysis_throughput(summit_store, results_dir):
    """Cold vs warm analysis throughput through the shared context.

    Cold runs against an empty AnalysisContext (invalidated first);
    warm reruns the same four analyses off the memoized results. The
    numbers land in BENCH_analysis.json for trend tracking; the floors
    here are deliberately looser than tests/test_stress.py since the
    bench store is ~4x smaller.
    """
    summit_store.invalidate()  # drop caches other benches may have warmed

    t0 = time.perf_counter()
    _four_analyses(summit_store)
    cold_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    _four_analyses(summit_store)
    warm_seconds = time.perf_counter() - t1

    rows = len(summit_store.files)
    payload = {
        "platform": "summit",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "rows": rows,
        "analyses": [
            "layer_volumes",
            "transfer_cdfs",
            "request_cdfs",
            "performance_by_bin",
        ],
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "cold_rows_per_second": round(rows / cold_seconds),
        "warm_rows_per_second": round(rows / warm_seconds),
        "warm_speedup": round(cold_seconds / warm_seconds, 1),
        "context_cache_entries": sum(
            summit_store.analysis().cache_info().values()
        ),
    }
    write_bench_json(results_dir, "analysis", payload)

    assert rows / cold_seconds > 300_000, payload
    assert cold_seconds > 5 * warm_seconds, payload

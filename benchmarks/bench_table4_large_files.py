"""Table 4: >1 TB files per layer — where the giants live."""

from conftest import write_result

from repro.analysis import large_files
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_table4(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [large_files(summit_store), large_files(cori_store)]
    )
    text = render_results(
        "Table 4 - files with >1TB transfer (full-year extrapolation)",
        HEADERS["table4"],
        results,
    )
    lines = [
        text,
        "",
        "paper: summit SCNL 0/0, PFS 7232/78; "
        "cori CBB 513/950, PFS 74/10045",
        f"note: counts this small are Poisson-noisy at scale "
        f"{summit_store.scale:.0e}; the placement shape is the result",
    ]
    write_result(results_dir, "table4", "\n".join(lines))

    summit, cori = results
    # Summit: >1TB files only on the PFS.
    assert summit.counts["insystem"] == (0, 0)
    assert summit.counts["pfs"][0] > 0
    # Cori: big writes dominated by the PFS; big reads present on CBB.
    total_w = cori.counts["pfs"][1] + cori.counts["insystem"][1]
    if total_w >= 5:
        assert cori.pfs_write_share() > 0.6

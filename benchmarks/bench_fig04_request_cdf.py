"""Figure 4: request-size CDFs over the Darshan bins."""

from conftest import write_result

from repro.analysis import request_cdfs
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_fig4(benchmark, summit_store, cori_store, results_dir):
    curves = benchmark(
        lambda: request_cdfs(summit_store) + request_cdfs(cori_store)
    )
    text = render_results(
        "Figure 4 - cumulative % of calls per request-size bin",
        HEADERS["fig4"],
        curves,
    )
    by = {(c.platform, c.layer, c.direction): c for c in curves}
    scnl_read = by[("summit", "insystem", "read")]
    scnl_write = by[("summit", "insystem", "write")]
    pfs_read = by[("summit", "pfs", "read")]
    lines = [
        text,
        "",
        f"summit SCNL 10K-100K share: paper 83%/60% (r/w), measured "
        f"{scnl_read.percent_in_bin('10K_100K'):.1f}%/"
        f"{scnl_write.percent_in_bin('10K_100K'):.1f}%",
        f"summit PFS reads in 0_100 + 1K_10K: paper ~45% each, measured "
        f"{pfs_read.percent_in_bin('0_100'):.1f}% + "
        f"{pfs_read.percent_in_bin('1K_10K'):.1f}%",
    ]
    write_result(results_dir, "fig04", "\n".join(lines))

    assert scnl_read.percent_in_bin("10K_100K") > 100 * (
        exp.SUMMIT_SCNL_10K_100K_READ - 0.15
    )
    assert scnl_write.percent_in_bin("10K_100K") > 100 * (
        exp.SUMMIT_SCNL_10K_100K_WRITE - 0.15
    )
    assert pfs_read.percent_in_bin("0_100") > 30
    assert pfs_read.percent_in_bin("1K_10K") > 30
    # Finding B: small requests dominate PFS reads on both platforms.
    # Burst-buffer traffic (Cori CBB) and collectively-buffered checkpoint
    # writes legitimately use MB-scale aggregated calls, so those curves
    # are asserted at the 100 MB mark — production I/O issues nothing
    # larger per call.
    for c in curves:
        if c.direction == "read" and c.layer == "pfs":
            assert c.cumulative_percent[4] > 75, (c.platform, c.layer)
        assert c.cumulative_percent[7] > 95, (c.platform, c.layer, c.direction)

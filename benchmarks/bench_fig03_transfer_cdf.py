"""Figure 3: per-file transfer-size CDFs — finding B (small transfers)."""

from conftest import write_result

from repro.analysis import transfer_cdfs
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_fig3(benchmark, summit_store, cori_store, results_dir):
    curves = benchmark(
        lambda: transfer_cdfs(summit_store) + transfer_cdfs(cori_store)
    )
    text = render_results(
        "Figure 3 - CDF of per-file transfer size", HEADERS["fig3"], curves
    )
    lines = [text, "", "paper <1GB fractions:"]
    for c in curves:
        paper = exp.SUB_1GB_FILE_FRACTION[(c.platform, c.layer, c.direction)]
        lines.append(
            f"  {c.platform} {c.layer} {c.direction}: paper "
            f"{100 * paper:.1f}% measured {c.percent_below(1e9):.1f}%"
        )
    write_result(results_dir, "fig03", "\n".join(lines))

    for c in curves:
        paper = exp.SUB_1GB_FILE_FRACTION[(c.platform, c.layer, c.direction)]
        assert c.percent_below(1e9) >= 100 * paper - 4.0, (
            c.platform, c.layer, c.direction,
        )

"""Figure 9: Summit transfer-size CDFs split by I/O interface."""

from conftest import write_result

from repro.analysis import interface_transfer_cdfs
from repro.analysis.report import HEADERS, render_results


def test_fig9(benchmark, summit_store, results_dir):
    curves = benchmark(lambda: interface_transfer_cdfs(summit_store))
    text = render_results(
        "Figure 9 - Summit transfer CDFs per interface",
        HEADERS["fig9"],
        curves,
    )
    by = {(c.interface, c.layer, c.direction): c for c in curves}
    stdio_scnl_r = by[("STDIO", "insystem", "read")]
    stdio_pfs_r = by[("STDIO", "pfs", "read")]
    stdio_pfs_w = by[("STDIO", "pfs", "write")]
    lines = [
        text,
        "",
        "paper: STDIO reads <1GB: >=98.7% (SCNL) / ~100% (PFS); "
        "STDIO writes <1GB: >=97.6% (PFS)",
        f"measured: {stdio_scnl_r.percent_below(1e9):.1f}% / "
        f"{stdio_pfs_r.percent_below(1e9):.1f}% / "
        f"{stdio_pfs_w.percent_below(1e9):.1f}%",
    ]
    write_result(results_dir, "fig09", "\n".join(lines))

    assert stdio_scnl_r.percent_below(1e9) >= 95.0
    assert stdio_pfs_r.percent_below(1e9) >= 98.0
    assert stdio_pfs_w.percent_below(1e9) >= 95.0
    # STDIO transfers skew smaller than POSIX on the PFS.
    posix_pfs_r = by[("POSIX", "pfs", "read")]
    assert (
        stdio_pfs_r.percent_below(100e6)
        >= posix_pfs_r.percent_below(100e6) - 5
    )

"""Figure 6: RO/RW/WO classification (POSIX+STDIO) — Recommendation 3."""

from conftest import write_result

from repro.analysis import file_classification
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_fig6(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [
            file_classification(summit_store),
            file_classification(cori_store),
        ]
    )
    text = render_results(
        "Figure 6 - file classification, POSIX+STDIO",
        HEADERS["fig6"],
        results,
    )
    lines = [text, "", "stageable (RO+WO) share of PFS files:"]
    for r in results:
        paper = exp.STAGEABLE_PFS_FRACTION[r.platform]
        lines.append(
            f"  {r.platform}: paper {100 * paper:.1f}% measured "
            f"{100 * r.stageable_pfs_fraction():.1f}%"
        )
    write_result(results_dir, "fig06", "\n".join(lines))

    for r in results:
        paper = exp.STAGEABLE_PFS_FRACTION[r.platform]
        assert r.stageable_pfs_fraction() > paper - 0.07

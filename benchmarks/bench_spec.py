"""Spec-compilation benchmark: the DSL must be a zero-cost abstraction.

The gate: generating the year via the builtin ``paper_mix`` spec (load +
validate + compile + generate) may cost at most 5% over the direct
archetype path at the bench scale — compilation only rearranges which
ArchetypeSpecs feed the generator, so essentially all time must stay in
generation. Correctness rides along unconditionally: the spec store is
asserted byte-identical to the direct store before any timing is
trusted. Pure compile latency (no generation) is recorded separately
for trend lines, along with one overlay pack's compile+generate cost.

Results land in ``BENCH_spec.json``.
"""

from __future__ import annotations

import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

import numpy as np

from repro.spec import compile_spec, generate_from_spec, pack_names
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)

#: Maximum spec-path overhead over the direct archetype path.
MAX_OVERHEAD = 1.05

#: Timed repetitions; the minimum is reported (standard for CPU-bound
#: latency gates: the min is the least-noise observation).
REPEATS = 3


def _time(fn) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _direct():
    gen = WorkloadGenerator("summit", GeneratorConfig(scale=BENCH_SCALE))
    return generate_with_shadows(gen, BENCH_SEED)


def _via_spec():
    return generate_from_spec(
        "paper_mix", platform="summit", scale=BENCH_SCALE, seed=BENCH_SEED
    )


def test_spec_compile_overhead(results_dir):
    direct_s, direct = _time(_direct)
    spec_s, via_spec = _time(_via_spec)

    # Identity first — a fast wrong answer is not a benchmark result.
    np.testing.assert_array_equal(direct.files, via_spec.files)
    np.testing.assert_array_equal(direct.jobs, via_spec.jobs)

    # Pure compile latency: everything but generation.
    compile_s, _ = _time(
        lambda: compile_spec("paper_mix", platform="summit",
                             scale=BENCH_SCALE)
    )
    # One overlay pack end-to-end, for the trend line (no gate: its
    # population is deliberately different from the paper mix).
    overlay_s, overlay = _time(
        lambda: generate_from_spec(
            "bb_eviction_storm", platform="summit",
            scale=BENCH_SCALE, seed=BENCH_SEED,
        )
    )

    overhead = spec_s / direct_s
    payload = {
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "rows": len(direct.files),
        "direct_seconds": round(direct_s, 4),
        "spec_seconds": round(spec_s, 4),
        "overhead_ratio": round(overhead, 4),
        "max_overhead_ratio": MAX_OVERHEAD,
        "compile_only_seconds": round(compile_s, 4),
        "bb_eviction_storm_seconds": round(overlay_s, 4),
        "bb_eviction_storm_rows": len(overlay.files),
        "packs": pack_names(),
        "byte_identical": True,
    }
    write_bench_json(results_dir, "spec", payload)

    assert overhead <= MAX_OVERHEAD, (
        f"spec path costs {overhead:.2%} of the direct path "
        f"(gate: {MAX_OVERHEAD:.0%}); compile alone took {compile_s:.3f}s"
    )

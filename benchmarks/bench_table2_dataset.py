"""Table 2: dataset summary (logs, jobs, files, node-hours)."""

from conftest import write_result

from repro.analysis import dataset_summary
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_table2(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [dataset_summary(summit_store), dataset_summary(cori_store)]
    )
    text = render_results(
        "Table 2 - dataset summary (full-year extrapolation)",
        HEADERS["table2"],
        results,
    )
    lines = [text, "", "paper reference:"]
    for r in results:
        paper = exp.TABLE2[r.platform]
        lines.append(
            f"  {r.platform}: logs {paper['logs']:.2e} (measured "
            f"{r.logs_scaled:.2e}), jobs {paper['jobs']:.2e} "
            f"({r.jobs_scaled:.2e}), files {paper['files']:.2e} "
            f"({r.files_scaled:.2e}), node-hours {paper['node_hours']:.2e} "
            f"({r.node_hours_scaled:.2e})"
        )
    write_result(results_dir, "table2", "\n".join(lines))
    # Shape: extrapolated counts within ~2x of the paper.
    for r in results:
        paper = exp.TABLE2[r.platform]
        assert 0.4 < r.jobs_scaled / paper["jobs"] < 2.5
        assert 0.4 < r.files_scaled / paper["files"] < 2.5
        assert 0.3 < r.logs_scaled / paper["logs"] < 3.0

"""Append-log ingest benchmark: streaming throughput and delta speedup.

Two numbers into ``BENCH_stream.json`` (the artifact CI uploads):

- **appends/s** — NDJSON end-to-end: parse complete lines from a stream
  file, batch them through the columnar ingest path, append to a store.
  Reported as logs/s, rows/s, and MB/s of wire bytes.
- **delta-vs-cold speedup** — the point of delta invalidation. One store
  keeps its analysis context warm across single-log appends (masks and
  index arrays extended in place, foldable results folded); the other is
  invalidated on every append and recomputes the same foldable query set
  from raw rows. Same logs, same queries, same results — the gate
  asserts the delta path is at least 5x faster on a >=100k-row store,
  and that both paths produce identical bits.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro.analysis import file_classification, interface_usage, layer_volumes, request_cdfs
from repro.instrument.runtime import LogMaterializer
from repro.platforms import summit
from repro.store.recordstore import RecordStore
from repro.store.schema import empty_files, empty_jobs
from repro.stream import StreamIngestor, dump_line, ingest_stream

#: The gate from the delta-invalidation contract (DESIGN.md §11).
MIN_SPEEDUP = 5.0
MIN_ROWS = 100_000

#: Single-log appends per path, after one untimed warm-up append. The
#: warm-up pays each path's one-time costs (the 1.5x-over-allocated
#: grow buffers on the delta side, page-faulting the clone on both), so
#: the timed rounds measure the steady-state refresh cost the gate is
#: about. Warm-up times are still reported in the JSON.
N_APPENDS = 8

#: The foldable query set served warm across appends.
QUERIES = (
    ("table3", lambda s: layer_volumes(s)),
    ("table6", lambda s: interface_usage(s)),
    ("fig4", lambda s: request_cdfs(s)),
    ("fig5", lambda s: request_cdfs(s, large_jobs_only=True)),
    ("fig6", lambda s: file_classification(s)),
    ("fig8", lambda s: file_classification(s, stdio_only=True)),
)


def _clone(store: RecordStore) -> RecordStore:
    return RecordStore(
        store.platform, store.files.copy(), store.jobs.copy(),
        domains=store.domains, extensions=store.extensions,
        scale=store.scale,
    )


def _run_queries(store: RecordStore) -> list:
    return [fn(store) for _, fn in QUERIES]


def test_stream_ingest_and_delta_speedup(summit_store, results_dir, tmp_path):
    machine = summit()
    mounts = machine.mount_table()
    assert len(summit_store.files) >= MIN_ROWS
    logs = LogMaterializer(machine, summit_store).materialize_many(N_APPENDS + 1)

    # -- appends/s: NDJSON end-to-end into an empty store -------------------
    stream_path = str(tmp_path / "bench.ndjson")
    with open(stream_path, "w") as fh:
        for log in logs:
            fh.write(dump_line(log))
    wire_bytes = os.path.getsize(stream_path)
    sink = RecordStore(
        "summit", empty_files(0), empty_jobs(0),
        domains=summit_store.domains, scale=summit_store.scale,
    )
    t0 = time.perf_counter()
    stats = ingest_stream(stream_path, sink, mounts, batch_logs=2)
    ingest_seconds = time.perf_counter() - t0
    assert stats.logs == len(logs) and stats.skipped == 0

    # -- delta vs cold: same appends, warm context vs full invalidation -----
    live, cold = _clone(summit_store), _clone(summit_store)
    live_ing = StreamIngestor(live, mounts)
    cold_ing = StreamIngestor(cold, mounts)
    _run_queries(live)  # warm: every foldable result memoized
    live_ctx = live.analysis()

    warmup_log, timed_logs = logs[0], logs[1:]
    t0 = time.perf_counter()
    live_ing.apply([warmup_log])
    _run_queries(live)
    delta_warmup = time.perf_counter() - t0

    delta_rounds = []
    for log in timed_logs:
        t0 = time.perf_counter()
        live_ing.apply([log])
        _run_queries(live)
        delta_rounds.append(time.perf_counter() - t0)
    delta_seconds = sum(delta_rounds)
    assert live.analysis() is live_ctx  # the warm context survived

    t0 = time.perf_counter()
    cold.invalidate()
    cold_ing.apply([warmup_log])
    _run_queries(cold)
    cold_warmup = time.perf_counter() - t0

    cold_rounds = []
    for log in timed_logs:
        t0 = time.perf_counter()
        cold.invalidate()  # the pre-delta discipline: recompute everything
        cold_ing.apply([log])
        _run_queries(cold)
        cold_rounds.append(time.perf_counter() - t0)
    cold_seconds = sum(cold_rounds)

    # Same bits on both paths: the speedup is not buying approximation.
    for (name, fn) in QUERIES:
        assert fn(live) == fn(cold), name

    speedup = cold_seconds / delta_seconds
    payload = {
        "platform": "summit",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "base_rows": len(summit_store.files),
        "appends": N_APPENDS,
        "queries": [name for name, _ in QUERIES],
        "ingest": {
            "logs": stats.logs,
            "rows": stats.rows,
            "wire_mb": round(wire_bytes / 1e6, 2),
            "seconds": round(ingest_seconds, 4),
            "logs_per_s": round(stats.logs / ingest_seconds, 1),
            "rows_per_s": round(stats.rows / ingest_seconds, 1),
            "mb_per_s": round(wire_bytes / 1e6 / ingest_seconds, 1),
        },
        "delta": {
            "seconds": round(delta_seconds, 4),
            "per_append_ms": round(delta_seconds / N_APPENDS * 1e3, 2),
            "warmup_s": round(delta_warmup, 4),
            "rounds_ms": [round(r * 1e3, 2) for r in delta_rounds],
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "per_append_ms": round(cold_seconds / N_APPENDS * 1e3, 2),
            "warmup_s": round(cold_warmup, 4),
            "rounds_ms": [round(r * 1e3, 2) for r in cold_rounds],
        },
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    write_bench_json(results_dir, "stream", payload)

    # The gate: on a production-sized store, delta refresh must beat
    # full recomputation by at least 5x.
    assert speedup >= MIN_SPEEDUP, payload

"""Calibration audit: every tuned marginal vs its published target."""

from conftest import write_result

from repro.analysis.report import render_table
from repro.core.calibration import calibration_report, miscalibrated


def test_calibration(benchmark, summit_store, cori_store, results_dir):
    reports = benchmark(
        lambda: {
            "summit": calibration_report(summit_store),
            "cori": calibration_report(cori_store),
        }
    )
    rows = []
    for platform, report in reports.items():
        for r in report:
            rows.append([platform, *r.to_rows()[0]])
    text = render_table(
        ["system", "quantity", "paper", "measured", "ratio"],
        rows,
        title="Calibration audit (full-year extrapolation)",
    )
    write_result(results_dir, "calibration", text)
    for platform, report in reports.items():
        bad = miscalibrated(report, factor=3.0)
        assert not bad, (platform, [r.quantity for r in bad])

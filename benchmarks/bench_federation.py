"""Federation benchmark: scatter-gather scaling + warm compare economics.

Two gates, mirroring the subsystem's acceptance bar:

- **scatter** — the reducer-family query set over the N-member catalog
  (N times the rows of one member) must sustain >= 0.6x the row
  throughput of a single member store queried serially: the fan-out may
  spend at most 40% of a single-store pipeline's work rate on thread
  scheduling, per-member context builds, and the reduce step, while
  covering N stores' worth of rows — >= 0.6*N single-store passes per
  unit time. Gated on multi-core runners (single-core boxes serialize
  the scatter and the ratio measures the box, not the subsystem); the
  numbers land in ``BENCH_federation.json`` either way, including the
  ideal-N-way efficiency for trend lines. Correctness is asserted
  unconditionally: the federated table3 must be bit-identical to the
  merged store's.
- **compare** — a cross-store compare repeated warm must be served
  entirely from the executor's per-member cache: zero new member runs,
  and the warm latency is recorded next to the cold one.
"""

from __future__ import annotations

import time

from conftest import write_bench_json

import numpy as np

from repro.api import run_query
from repro.federation import FederationExecutor, StoreCatalog
from repro.parallel import usable_cores
from repro.store.io import save_store
from repro.store.merge import merge_stores

#: Member count (and scatter pool width) of the benchmark fleet.
MEMBERS = 3

#: The exact-reducer family — every query here scatters per member and
#: reduces member-wise, so this is the path the gate is about.
QUERIES = ("table3", "table6", "fig4", "fig5", "fig6", "fig8")

#: Minimum fleet-vs-single-store row-throughput ratio on the scatter.
SCATTER_EFFICIENCY = 0.6


def _partition(store, k):
    """k disjoint job populations (stand-ins for k monthly ingests)."""
    order = np.argsort(store.jobs["start_time"], kind="stable")
    parts = []
    for chunk in np.array_split(order, k):
        mask = np.zeros(len(store.jobs), dtype=bool)
        mask[chunk] = True
        parts.append(store.filter_jobs(mask))
    return parts


def _run_set(runner) -> float:
    t0 = time.perf_counter()
    for name in QUERIES:
        runner(name)
    return time.perf_counter() - t0


def test_federation_scatter_and_compare(summit_store, results_dir, tmp_path):
    parts = _partition(summit_store, MEMBERS)
    catalog = StoreCatalog.init(str(tmp_path / "fleet.json"))
    for i, part in enumerate(parts):
        path = str(tmp_path / f"m{i}.npz")
        save_store(part, path)
        catalog.add_store(f"m{i}", path, period=f"2020-{i + 1:02d}")
    total_rows = len(summit_store.files)
    member_rows = len(parts[0].files)

    # Baseline: the query set over ONE member store, serial. (A fresh
    # store object, so it pays the same cold context build each member
    # pays inside the scatter.)
    baseline = parts[0].filter(np.ones(member_rows, dtype=bool))
    serial_seconds = _run_set(lambda n: run_query(baseline, n))
    serial_throughput = member_rows / serial_seconds

    with FederationExecutor(catalog, max_workers=MEMBERS) as executor:
        # Prime the member stores: decompressing .npz members is ingest
        # cost, paid once per process — the baseline sits in memory too.
        # Contexts stay cold on both sides.
        for label in catalog.labels:
            executor.member_store(label)
        # Cold scatter over all members: N times the rows of the
        # baseline, N workers wide.
        federated_seconds = _run_set(executor.query)
        federated_throughput = total_rows / federated_seconds

        # Correctness pin (always on): reducer == merged store.
        merged = merge_stores(parts, remap_log_ids=True, remap_job_ids=True)
        assert (
            executor.query("table3").to_rows()
            == run_query(merged, "table3").to_rows()
        )

        # Gate 2: a repeated cross-store compare runs zero members.
        t0 = time.perf_counter()
        cold_report = executor.compare("table3", "m0", "m2")
        compare_cold_s = time.perf_counter() - t0
        runs_before = executor.stats()["counters"]["member_runs"]
        t0 = time.perf_counter()
        warm_report = executor.compare("table3", "m0", "m2")
        compare_warm_s = time.perf_counter() - t0
        counters = executor.stats()["counters"]
        assert counters["member_runs"] == runs_before, (
            "warm compare recomputed a member instead of hitting the cache"
        )
        assert warm_report.rows == cold_report.rows
        cache = executor.cache.info()

    ratio = federated_throughput / serial_throughput
    ideal_n_way = federated_throughput / (MEMBERS * serial_throughput)
    cores = usable_cores()
    gated = cores >= 2
    if gated:
        assert ratio >= SCATTER_EFFICIENCY, (
            f"scatter over {MEMBERS} members sustained only "
            f"{ratio:.2f}x single-store row throughput "
            f"(>= {SCATTER_EFFICIENCY} required on {cores} cores)"
        )

    write_bench_json(results_dir, "federation", {
        "members": MEMBERS,
        "queries": list(QUERIES),
        "rows_total": total_rows,
        "rows_per_member": member_rows,
        "serial_member_seconds": round(serial_seconds, 4),
        "federated_seconds": round(federated_seconds, 4),
        "serial_member_rows_per_s": round(serial_throughput),
        "federated_rows_per_s": round(federated_throughput),
        "scatter_throughput_ratio": round(ratio, 3),
        "scatter_gate": SCATTER_EFFICIENCY,
        "scatter_gated": gated,
        "ideal_n_way_efficiency": round(ideal_n_way, 3),
        "usable_cores": cores,
        "compare_cold_ms": round(1e3 * compare_cold_s, 2),
        "compare_warm_ms": round(1e3 * compare_warm_s, 2),
        "compare_rows": len(cold_report.rows),
        "cache": cache,
    })

"""Closed-loop load generation against the analysis-serving subsystem.

Three regimes, mirroring how a production query layer degrades:

- **cold** — every request computes from raw rows (fresh engine, fresh
  analysis context): the price of the first client after a store load;
- **warm** — the steady state: every request is an LRU cache hit;
- **coalesced** — a thundering herd of identical requests with the
  result cache disabled: the coalescer must collapse them onto a few
  executions instead of queueing N copies.

Each regime reports throughput and p50/p95/p99 latency into
``BENCH_serve.json`` (the artifact CI uploads). The generator is
closed-loop: each simulated client issues its next request only after
the previous one completes, so offered load adapts to service rate
instead of overrunning it (the shedding path has its own tests).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import BENCH_SCALE, BENCH_SEED, write_bench_json

from repro.analysis import performance_by_bin
from repro.analysis.context import AnalysisContext
from repro.serve import QueryEngine
from repro.serve.registry import QuerySpec, default_registry

#: The steady-state query mix: one representative per exhibit family.
MIX = ("table2", "table3", "table5", "fig3", "fig6", "fig11", "users")


def _herd_run(store, ctx, params):
    # A deliberately *uncacheable* heavy analysis: a fresh context per
    # execution, so every execution pays the full from-raw-rows cost and
    # only the coalescer stands between the herd and N duplicate scans.
    return performance_by_bin(store, context=AnalysisContext(store))


HERD_QUERY = "fig11_cold"
HERD_SPEC = QuerySpec(
    name=HERD_QUERY, title="Figure 11 recomputed from raw rows",
    kind="table", header_key="fig11", run=_herd_run,
)


def _percentile(ordered: list[float], q: float) -> float:
    rank = -(-q * len(ordered) // 100)
    return ordered[max(0, min(len(ordered), int(rank)) - 1)]


def _closed_loop(engine, queries, *, clients: int, requests: int) -> dict:
    """Run a closed loop; returns throughput + latency percentiles."""
    latencies: list[float] = []
    lock = threading.Lock()
    next_index = [0]

    def client() -> None:
        while True:
            with lock:
                i = next_index[0]
                if i >= requests:
                    return
                next_index[0] = i + 1
            name = queries[i % len(queries)]
            t0 = time.perf_counter()
            engine.query(name, timeout=120)
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)

    started = time.perf_counter()
    with ThreadPoolExecutor(clients) as pool:
        for f in [pool.submit(client) for _ in range(clients)]:
            f.result()
    seconds = time.perf_counter() - started
    ordered = sorted(latencies)
    return {
        "clients": clients,
        "requests": len(latencies),
        "seconds": round(seconds, 4),
        "throughput_rps": round(len(latencies) / seconds, 1),
        "p50_ms": round(_percentile(ordered, 50) * 1e3, 3),
        "p95_ms": round(_percentile(ordered, 95) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 99) * 1e3, 3),
    }


def test_serve_load(summit_store, results_dir):
    exhibits = sorted(default_registry())

    # Cold: a fresh engine and a fresh analysis context; every query
    # name once, two closed-loop clients.
    summit_store.invalidate()  # drop caches other benches may have warmed
    with QueryEngine(summit_store, max_workers=4) as engine:
        cold = _closed_loop(engine, exhibits, clients=2, requests=len(exhibits))

        # Warm: same engine, every key now cache-resident.
        warm = _closed_loop(engine, list(MIX), clients=8, requests=1500)
        warm_counters = engine.stats()["counters"]

    # Coalesced: result cache off, 16 clients hammer one heavy query.
    with QueryEngine(
        summit_store, max_workers=4, cache_entries=0,
        extra_queries={HERD_QUERY: HERD_SPEC},
    ) as engine:
        herd = _closed_loop(engine, [HERD_QUERY], clients=16, requests=96)
        herd_stats = engine.stats()
        herd["executions"] = herd_stats["counters"]["executions"]
        herd["coalesced"] = herd_stats["counters"].get("coalesced", 0)
        herd["coalesce_rate"] = herd_stats["rates"]["coalesce"]

    payload = {
        "platform": "summit",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "rows": len(summit_store.files),
        "engine": {"max_workers": 4, "max_queue": 32},
        "query_mix": list(MIX),
        "cold": cold,
        "warm": warm,
        "coalesced": herd,
    }
    write_bench_json(results_dir, "serve", payload)

    # Steady state must be dominated by the result cache ...
    assert warm_counters["cache_hits"] >= warm["requests"], payload
    # ... and orders of magnitude faster than computing from rows.
    assert warm["throughput_rps"] > 10 * cold["throughput_rps"], payload
    assert warm["p99_ms"] < cold["p50_ms"], payload
    # The herd collapses: far fewer executions than requests, and the
    # balance is accounted for by coalescing (no silent queue growth).
    assert herd["executions"] < herd["requests"] / 2, payload
    assert herd["executions"] + herd["coalesced"] == herd["requests"], payload

"""Table 6: interface usage per layer — finding D (the rise of STDIO)."""

from conftest import write_result

from repro.analysis import interface_usage
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_table6(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [interface_usage(summit_store), interface_usage(cori_store)]
    )
    text = render_results(
        "Table 6 - files per interface per layer (full-year extrapolation)",
        HEADERS["table6"],
        results,
    )
    lines = [text, ""]
    for r in results:
        paper = exp.STDIO_OVERALL_SHARE[r.platform]
        lines.append(
            f"  {r.platform} STDIO share: paper {100 * paper:.1f}% "
            f"measured {100 * r.stdio_share():.1f}%"
        )
    lines.append(
        f"  summit SCNL STDIO/POSIX: paper "
        f"{exp.SUMMIT_SCNL_STDIO_OVER_POSIX}x measured "
        f"{results[0].stdio_over_posix('insystem'):.2f}x"
    )
    write_result(results_dir, "table6", "\n".join(lines))

    summit, cori = results
    assert summit.stdio_over_posix("insystem") > 2.0
    assert 0.25 < summit.stdio_share() < 0.55
    assert 0.08 < cori.stdio_share() < 0.22
    # Cori: MPI-IO strong; nearly all CBB POSIX is MPI-IO underneath.
    assert cori.counts["insystem"]["MPI-IO"] >= 0.8 * cori.counts["insystem"]["POSIX"]

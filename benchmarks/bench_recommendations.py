"""Quantifying the paper's recommendations on the synthetic year.

Not a paper exhibit, but the natural follow-on experiment the paper's
conclusions call for: price each recommendation's opportunity with the
performance model and verify the direction of the prediction.
"""

from conftest import write_result

from repro.optimize import assess_staging, find_aggregation_opportunities
from repro.platforms import cori, summit


def test_aggregation_opportunity(benchmark, summit_store, results_dir):
    opps = benchmark(
        lambda: find_aggregation_opportunities(summit_store, summit())
    )
    lines = ["Recommendation 2/6 - aggregation opportunities (Summit)"]
    for o in opps[:8]:
        lines.append(
            f"  {o.layer:9s} {o.interface:6s} {o.direction:5s}: "
            f"{o.nfiles:8d} files, speedup {o.speedup:8.1f}x, "
            f"saves {o.saved_seconds:,.0f} s"
        )
    write_result(results_dir, "rec_aggregation", "\n".join(lines))
    assert opps
    assert all(o.speedup >= 1.0 for o in opps)
    # The headline case: tiny POSIX PFS reads gain an order of magnitude.
    best = max(o.speedup for o in opps if o.direction == "read")
    assert best > 10


def test_staging_opportunity(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [
            assess_staging(summit_store, summit(), sample=100_000),
            assess_staging(cori_store, cori(), sample=100_000),
        ]
    )
    lines = ["Recommendation 3 - staging assessment"]
    for a in results:
        lines.append(
            f"  {a.platform}: stageable "
            f"{100 * a.stageable_file_fraction:.1f}% of PFS files; "
            f"in-job {a.direct_seconds:,.0f}s -> {a.staged_seconds:,.0f}s "
            f"({a.in_job_speedup:.1f}x), movement {a.movement_seconds:,.0f}s, "
            f"worthwhile={a.worthwhile}"
        )
    write_result(results_dir, "rec_staging", "\n".join(lines))
    for a in results:
        assert a.stageable_file_fraction > 0.8  # the paper's >90% finding
        assert a.in_job_speedup > 1.0

"""Table 5: job layer exclusivity — the staging-style asymmetry."""

from conftest import write_result

from repro.analysis import layer_exclusivity
from repro.analysis.report import HEADERS, render_results
from repro.core import expectations as exp


def test_table5(benchmark, summit_store, cori_store, results_dir):
    results = benchmark(
        lambda: [layer_exclusivity(summit_store), layer_exclusivity(cori_store)]
    )
    text = render_results(
        "Table 5 - job layer exclusivity (full-year extrapolation)",
        HEADERS["table5"],
        results,
    )
    lines = [
        text,
        "",
        f"paper: summit 0 / 3.42K / 241.5K; cori 103.46K / 35.9K / 579.91K "
        f"(CBB-only {100 * exp.CORI_CBB_ONLY_FRACTION:.2f}%)",
    ]
    write_result(results_dir, "table5", "\n".join(lines))

    summit, cori = results
    assert summit.insystem_only_fraction() < 0.01
    assert 0.09 < cori.insystem_only_fraction() < 0.22
    # Summit SCNL users are rare (both-layers jobs ~1.4%).
    assert summit.both / summit.total < 0.05

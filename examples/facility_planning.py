#!/usr/bin/env python
"""The facility operator's view: layer demand, bursts, and middleware fixes.

1. Replays a synthetic Summit year as time-binned bandwidth demand per
   storage layer — showing the paper's unbalanced-layer finding at the
   facility level (the PFS carries sustained load with violent bursts
   while SCNL idles).
2. Probes the layers IOR-style around the clock (TOKIO-fashion) to show
   production-load variability.
3. Demonstrates the middleware fixes the paper recommends: the adaptive
   layer placer and the write-back chunk cache, each priced/measured.

Run:  python examples/facility_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import render_table
from repro.darshan.accumulate import OP_WRITE, make_ops
from repro.darshan.stdio_ext import accumulate_stdio_ext
from repro.iosim import FacilityReplay, IorConfig, probe_series
from repro.middleware import AccessPlan, WriteBackChunkCache, place_dataset
from repro.platforms import summit
from repro.units import GiB, KiB, MiB, format_size
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def main() -> int:
    machine = summit()
    store = generate_with_shadows(
        WorkloadGenerator("summit", GeneratorConfig(scale=5e-4)), 20220627
    )

    # ---- 1. layer demand ------------------------------------------------
    replay = FacilityReplay(store, machine)
    print(render_table(
        ["system", "layer", "dir", "mean util", "peak util", ">80% of time"],
        replay.summary_rows(),
        title="Layer demand over the year (full-scale extrapolation)",
    ))
    pfs_w = replay.demand("pfs", "write")
    scnl_w = replay.demand("insystem", "write")
    print(
        f"\nThe capacity layer carries "
        f"{pfs_w.mean_utilization() / max(scnl_w.mean_utilization(), 1e-9):,.0f}x "
        "the relative write load of the performance layer — the paper's\n"
        "unbalanced-layers finding, seen from the machine room. Write "
        f"demand peaks at {pfs_w.peak_utilization():,.1f}x of Alpine's "
        "peak: the burst the in-system layer exists to absorb."
    )

    # ---- 2. TOKIO-style probing -----------------------------------------
    cfg = IorConfig(tasks=128, transfer_size=4 * MiB, block_size=512 * MiB)
    hours = np.arange(0, 24)
    series = probe_series(
        machine, "pfs", cfg, "write",
        times_of_day=np.repeat(hours * 3600.0, 200), seed=11,
    ).reshape(24, 200).mean(axis=1)
    print("\nIOR probe, mean delivered write bandwidth by hour of day:")
    worst = int(series.argmin())
    best = int(series.argmax())
    for h in (0, 6, 12, 15, 18, 21):
        bar = "#" * int(40 * series[h] / series.max())
        print(f"  {h:02d}:00 {format_size(series[h])}/s {bar}")
    print(f"  best {best:02d}:00, worst {worst:02d}:00 "
          f"({series[best] / series[worst]:.2f}x swing)")

    # ---- 3a. adaptive placement ----------------------------------------
    print("\nAdaptive placement decisions (middleware-level, priced):")
    plans = [
        ("small persistent input", AccessPlan(
            bytes_read=64 * MiB, bytes_written=0,
            request_size=1 * MiB, nprocs=8)),
        ("hot scratch, re-read", AccessPlan(
            bytes_read=200 * GiB, bytes_written=200 * GiB,
            request_size=64 * KiB, nprocs=512,
            persistent_input=False, persistent_output=False)),
        ("large streaming input", AccessPlan(
            bytes_read=500 * GiB, bytes_written=0,
            request_size=4 * MiB, nprocs=1024)),
    ]
    for name, plan in plans:
        d = place_dataset(machine, plan, count_staging_in_job=True)
        print(
            f"  {name:24s} -> {d.layer_key:9s} "
            f"(pfs {d.pfs_seconds:8.1f}s vs in-system "
            f"{d.insystem_seconds:8.1f}s + staging {d.staging_seconds:6.1f}s)"
        )

    # ---- 3b. write-back chunk cache -------------------------------------
    rng = np.random.default_rng(3)
    offsets = (rng.permutation(2000) * 6_000).tolist()
    raw = make_ops([OP_WRITE] * 2000, offsets, [512] * 2000,
                   np.arange(2000, dtype=float), [0.0001] * 2000)
    cached, stats = WriteBackChunkCache.apply_to_stream(
        raw, chunk_size=256 * KiB, capacity_chunks=32
    )
    waf_raw = accumulate_stdio_ext(1, 0, raw).write_amplification()
    waf_cached = accumulate_stdio_ext(1, 0, cached).write_amplification()
    print(
        f"\nWrite-back chunk cache on a random 512B write stream "
        f"(Recommendation 4):\n"
        f"  {stats.app_writes} app writes -> {stats.flushed_writes} "
        f"chunk-aligned flushes ({stats.write_reduction:.0f}x fewer ops)\n"
        f"  estimated flash write amplification: {waf_raw:.1f} -> "
        f"{waf_cached:.1f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

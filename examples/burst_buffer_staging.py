#!/usr/bin/env python
"""DataWarp burst-buffer staging on Cori — Recommendation 3 quantified.

Walks a data-analysis job through Cori's two-layer subsystem twice:

* **Direct**: every input is read from Lustre (default stripe count 1!)
  and every product written back to it, inside the job.
* **Staged**: the scheduler executes ``#DW stage_in`` before the job, the
  job reads/writes its job-exclusive CBB namespace at burst-buffer speed,
  and ``stage_out`` runs after exit — the movement never burns node-hours.

The example also shows why Table 5 looks the way it does: the staged
job's Darshan window contains *only* CBB traffic.

Run:  python examples/burst_buffer_staging.py
"""

from __future__ import annotations

import numpy as np

from repro.iosim import (
    DataWarpManager,
    LustreFilesystem,
    PerfModel,
    StagingEngine,
    StagingStyle,
)
from repro.iosim.datawarp import StageDirective, StageKind
from repro.platforms import cori
from repro.platforms.interfaces import IOInterface
from repro.units import GB, GiB, MiB, format_size


def main() -> int:
    machine = cori()
    scratch, cbb = machine.pfs, machine.in_system
    perf = PerfModel()
    rng = np.random.default_rng(7)

    lustre = LustreFilesystem(
        ost_count=scratch.params["ost_count"],
        mds_count=scratch.params["mds_count"],
        default_stripe_size=scratch.params["stripe_size"],
        default_stripe_count=scratch.params["stripe_count"],
    )
    dw = DataWarpManager(
        pool_bytes=cbb.capacity_bytes,
        bb_node_count=cbb.server_count,
        granularity=cbb.params["granularity"],
    )

    nprocs = 2048
    inputs = [(f"/global/cscratch1/proj/in_{i:02d}.h5", 40 * GiB) for i in range(8)]
    outputs = [(f"/global/cscratch1/proj/out_{i:02d}.h5", 10 * GiB) for i in range(4)]

    # ---- direct: everything on Lustre inside the job -------------------
    direct = 0.0
    for path, size in inputs:
        layout = lustre.create(path, rng)  # default stripe count 1
        direct += perf.single_transfer_time(
            scratch, IOInterface.POSIX, "read",
            nbytes=size, request_size=1 * MiB,
            nprocs=nprocs, file_parallelism=layout.parallelism(size),
            shared=True,
        )
    for path, size in outputs:
        layout = lustre.create(path, rng)
        direct += perf.single_transfer_time(
            scratch, IOInterface.MPIIO, "write",
            nbytes=size, request_size=4 * MiB,
            nprocs=nprocs, file_parallelism=layout.parallelism(size),
            shared=True, collective=True,
        )

    # ---- staged: #DW directives + job-exclusive CBB namespace ----------
    total_in = sum(s for _, s in inputs)
    total_out = sum(s for _, s in outputs)
    job_id = 555
    alloc = dw.allocate(job_id, int(1.2 * (total_in + total_out)))
    print(
        f"DataWarp allocation: requested "
        f"{format_size(int(1.2 * (total_in + total_out)))}, granted "
        f"{format_size(alloc.granted_bytes)} over {alloc.bb_nodes} BB nodes"
    )
    for path, size in inputs:
        dw.stage_in(
            job_id,
            StageDirective(StageKind.IN, path, f"/bb{path}", size),
        )

    staged = 0.0
    for path, size in inputs:
        staged += perf.single_transfer_time(
            cbb, IOInterface.POSIX, "read",
            nbytes=size, request_size=4 * MiB,
            nprocs=nprocs,
            file_parallelism=min(alloc.bb_nodes, size // (1024 * MiB) + 1),
            shared=True,
        )
    for path, size in outputs:
        dw.write(job_id, f"/bb{path}", size)
        staged += perf.single_transfer_time(
            cbb, IOInterface.MPIIO, "write",
            nbytes=size, request_size=4 * MiB,
            nprocs=nprocs,
            file_parallelism=min(alloc.bb_nodes, size // (1024 * MiB) + 1),
            shared=True, collective=True,
        )
        dw.stage_out(
            job_id,
            StageDirective(StageKind.OUT, path, f"/bb{path}", size),
        )

    engine = StagingEngine(machine, perf, StagingStyle.SCHEDULER)
    plans = engine.plan_for_files(
        [(p, s, "read-only") for p, s in inputs]
        + [(p, s, "write-only") for p, s in outputs]
    )
    stage_cost = engine.staging_time(plans, nprocs=nprocs)
    dw.release(job_id)

    print(f"\nI/O inside the job window ({nprocs} ranks):")
    print(f"  direct to Lustre : {direct:8.1f} s")
    print(f"  via CBB          : {staged:8.1f} s  "
          f"({direct / staged:.1f}x faster)")
    print(f"  staging movement : {stage_cost:8.1f} s "
          "(outside the job window — scheduler-driven, costs no node-hours)")
    print(
        "\nDarshan view of the staged job: CBB traffic only — this is how "
        "14.38% of Cori jobs\nbecome 'CBB-exclusive' in Table 5 while "
        "their data still flows through Lustre."
    )
    visible = engine.visible_in_darshan_window()
    print(f"staging visible in the Darshan window: {visible}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Turn the paper's recommendations into actionable advice for a platform.

Runs all four optimization advisors over a synthetic Summit year:

* request aggregation (Recommendations 2/6) — where would middleware-level
  aggregation buy the most I/O time?
* data staging (Recommendation 3) — how much in-job time would staging the
  stageable PFS traffic through SCNL save?
* Lustre striping (§5 future work, priced on Cori) — what should the
  stripe counts be?
* flash wear (Recommendation 4) — which STDIO write streams would burn
  the most SSD if left unoptimized?

Run:  python examples/io_advisor.py
"""

from __future__ import annotations

import numpy as np

from repro.darshan.accumulate import OP_WRITE, make_ops
from repro.iosim.lustre import LustreFilesystem
from repro.optimize import (
    assess_staging,
    find_aggregation_opportunities,
    rank_flash_wear,
    recommend_striping,
)
from repro.platforms import cori, summit
from repro.units import GB, format_size
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def main() -> int:
    machine = summit()
    store = generate_with_shadows(
        WorkloadGenerator("summit", GeneratorConfig(scale=2e-4)), 20220627
    )
    print(f"advising on {store!r}\n")

    # ---- aggregation ----------------------------------------------------
    print("== Recommendation 2/6: request aggregation ==")
    for opp in find_aggregation_opportunities(store, machine)[:5]:
        print(
            f"  {opp.layer:9s} {opp.interface:6s} {opp.direction:5s}: "
            f"{opp.nfiles:7d} files at mean request "
            f"{format_size(opp.mean_request):>9}; aggregate to 4 MiB for "
            f"{opp.speedup:6.1f}x ({opp.saved_seconds:,.0f} s saved)"
        )

    # ---- staging --------------------------------------------------------
    print("\n== Recommendation 3: staging through the in-system layer ==")
    assessment = assess_staging(store, machine, sample=100_000)
    print(
        f"  stageable PFS files: "
        f"{100 * assessment.stageable_file_fraction:.1f}% "
        f"({format_size(assessment.stageable_bytes)} priced)"
    )
    print(
        f"  in-job I/O: direct {assessment.direct_seconds:,.0f} s vs "
        f"staged {assessment.staged_seconds:,.0f} s "
        f"({assessment.in_job_speedup:.1f}x)"
    )
    print(
        f"  movement outside the window: "
        f"{assessment.movement_seconds:,.0f} s; worthwhile: "
        f"{assessment.worthwhile}"
    )

    # ---- striping (Cori) -------------------------------------------------
    print("\n== §5 future work: Lustre striping defaults (Cori) ==")
    fs = LustreFilesystem()
    sizes = np.array([1 * GB, 10 * GB, 100 * GB, 1000 * GB])
    nprocs = np.array([64, 256, 1024, 4096])
    for rec in recommend_striping(sizes, nprocs, cori().pfs, fs):
        print(
            f"  {format_size(rec.file_size):>9} file, {rec.nprocs:5d} ranks: "
            f"stripe {rec.current_stripe_count} -> "
            f"{rec.recommended_stripe_count:3d}  "
            f"({rec.speedup:5.1f}x faster shared reads)"
        )

    # ---- flash wear -------------------------------------------------------
    print("\n== Recommendation 4: flash wear on the in-system layer ==")
    rng = np.random.default_rng(5)
    streams = []
    # A sequential log writer, a rewrite-heavy scratch file, a random writer.
    seq = list(range(0, 200 * 4096, 4096))
    streams.append((1, 0, make_ops([OP_WRITE] * len(seq), seq, [4096] * len(seq),
                                   np.arange(len(seq), dtype=float), [0.001] * len(seq))))
    rw = [0, 0, 0, 0, 0] * 40
    streams.append((2, 0, make_ops([OP_WRITE] * len(rw), rw, [8192] * len(rw),
                                   np.arange(len(rw), dtype=float), [0.001] * len(rw))))
    rnd = (rng.permutation(200) * 65536).tolist()
    streams.append((3, 0, make_ops([OP_WRITE] * len(rnd), rnd, [512] * len(rnd),
                                   np.arange(len(rnd), dtype=float), [0.001] * len(rnd))))
    for report in rank_flash_wear(streams):
        print(
            f"  record {report.record_id}: WAF "
            f"{report.write_amplification:5.2f} ({report.severity}); "
            f"rewrite {100 * report.ext.rewrite_ratio:5.1f}%, random "
            f"{100 * report.ext.random_write_fraction:5.1f}%"
        )
        for m in report.mitigations:
            print(f"      -> {m}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Work with on-disk Darshan-style logs like a facility operator would.

Materializes a handful of application-instance logs from a generated
population, writes them as self-describing binary files, then plays the
role of a downstream analysis tool: parse the directory, validate every
log, and compute per-layer / per-interface statistics from the parsed
records alone (no access to the generator).

Run:  python examples/log_forensics.py [outdir]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.darshan import read_log, validate_log, write_log
from repro.darshan.constants import ModuleId
from repro.darshan.summary import render_log_summary
from repro.instrument import LogMaterializer
from repro.platforms import cori
from repro.store.ingest import ingest_logs
from repro.units import format_size
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def main() -> int:
    outdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-logs-"
    )
    os.makedirs(outdir, exist_ok=True)

    machine = cori()
    gen = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5))
    store = generate_with_shadows(gen, 1234)
    materializer = LogMaterializer(machine, store)

    # --- write a directory of logs --------------------------------------
    nlogs = 12
    paths = []
    for log_id in materializer.log_ids(nlogs):
        log = materializer.materialize(int(log_id))
        path = os.path.join(outdir, f"job{log.job.job_id}_log{log_id}.rdshn")
        write_log(log, path)
        paths.append(path)
    sizes = [os.path.getsize(p) for p in paths]
    print(f"wrote {len(paths)} logs to {outdir} "
          f"({format_size(sum(sizes))} total, "
          f"avg {format_size(sum(sizes) / len(sizes))})")

    # --- downstream tool: parse, validate, analyze ----------------------
    logs = []
    for path in paths:
        log = read_log(path)
        validate_log(log)
        logs.append(log)
    print(f"parsed and validated {len(logs)} logs")

    ingested = ingest_logs(
        logs, "cori", machine.mount_table(), domains=store.domains
    )
    files = ingested.files
    print(f"\nrecovered {len(files)} file records:")
    for module in (ModuleId.POSIX, ModuleId.MPIIO, ModuleId.STDIO):
        sel = files[files["interface"] == int(module)]
        if not len(sel):
            continue
        print(
            f"  {module.prefix:6s}: {len(sel):5d} records, "
            f"read {format_size(int(sel['bytes_read'].sum()))}, "
            f"written {format_size(int(sel['bytes_written'].sum()))}"
        )
    for layer_name, code in (("Cori Scratch", 0), ("CBB", 1)):
        sel = files[files["layer"] == code]
        print(f"  {layer_name:13s}: {len(sel):5d} records")

    # A darshan-parser-style summary of the busiest log.
    busiest = max(logs, key=lambda l: sum(l.total_bytes()))
    print("\nsummary of the busiest log:")
    print(render_log_summary(busiest, top_k=3))

    # Lustre layout records made it through the round trip too.
    lustre_records = sum(len(log.records(ModuleId.LUSTRE)) for log in logs)
    print(f"\nLUSTRE layout records: {lustre_records} "
          "(stripe size/count/offset per PFS file)")
    sample = next(
        rec for log in logs for rec in log.records(ModuleId.LUSTRE)
    )
    print(
        f"  sample: stripe_size={format_size(sample.get('STRIPE_SIZE'))}, "
        f"stripe_width={int(sample.get('STRIPE_WIDTH'))}, "
        f"OSTs={int(sample.get('OSTS'))}, MDTs={int(sample.get('MDTS'))}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

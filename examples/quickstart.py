#!/usr/bin/env python
"""Quickstart: run the full characterization study at a small scale.

Generates a synthetic year for Summit and Cori (see DESIGN.md for how the
population is calibrated to the paper's published statistics), runs every
table/figure analysis from the HPDC '22 study, prints the rendered
exhibits, and checks the paper's headline shapes.

Run:  python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

from repro.core import CharacterizationStudy, StudyConfig


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 5e-4
    study = CharacterizationStudy(StudyConfig(seed=20220627, scale=scale))

    failures = 0
    for platform in ("summit", "cori"):
        print("=" * 78)
        print(f"{platform.upper()} — synthetic year at scale {scale:g}")
        print("=" * 78)
        print(study.render(platform))
        print()
        print(f"--- paper-shape checks ({platform}) ---")
        for check in study.shape_checks(platform):
            print(check)
            failures += not check.passed
        print()

    if failures:
        print(f"{failures} shape check(s) failed")
        return 1
    print("all paper shapes reproduced")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""HDF5-style checkpointing with and without middleware aggregation.

Drives the HDF5-like library (`repro.middleware.h5sim`) the way a
simulation code checkpoints: a 2-D field dataset written row by row in
small slabs, to three targets:

1. Alpine, aggregation OFF — every 4 KiB row write hits GPFS;
2. Alpine, aggregation ON — the write-back chunk cache coalesces rows
   into 1 MiB chunk flushes (Recommendation 6's middleware aggregation);
3. SCNL, aggregation ON — the adaptive-placement choice for hot scratch.

Each run ends with a genuine Darshan-style POSIX record, so the exact
counters the paper analyzes (op counts, size histograms, timers) show
the optimization working.

Run:  python examples/hdf5_checkpointing.py
"""

from __future__ import annotations

from repro.darshan.records import iter_size_bins
from repro.middleware import H5File
from repro.platforms import summit
from repro.units import MiB, format_size


def checkpoint(layer_key: str, aggregate: bool):
    f = H5File(
        summit(), layer_key, f"/x/ckpt_{layer_key}_{aggregate}.h5",
        aggregate=aggregate, cache_chunk_bytes=1 * MiB, nprocs=96,
    )
    field = f.create_dataset("pressure", (16384, 512), itemsize=8)  # 64 MiB
    for row in range(16384):
        field.write_slab((row, 0), (1, 512))  # 4 KiB application writes
    return f.close()


def describe(tag: str, report) -> None:
    rec = report.record
    hist = {label: n for label, n in iter_size_bins(rec, "write") if n}
    print(
        f"{tag:28s} {rec['WRITES']:6d} syscalls  "
        f"{format_size(rec.bytes_written):>10} in {report.write_seconds:7.2f}s "
        f"({format_size(rec.write_bandwidth()):>10}/s)  bins: {hist}"
    )


def main() -> int:
    print("64 MiB checkpoint written as 16,384 x 4 KiB row slabs:\n")
    raw = checkpoint("pfs", aggregate=False)
    describe("Alpine, aggregation OFF", raw)
    agg = checkpoint("pfs", aggregate=True)
    describe("Alpine, aggregation ON", agg)
    scnl = checkpoint("insystem", aggregate=True)
    describe("SCNL,   aggregation ON", scnl)

    print(
        f"\naggregation turned {raw.record['WRITES']} application-sized "
        f"system calls into {agg.record['WRITES']} chunk-aligned ones "
        f"({agg.aggregation_factor:.0f}x) and cut the priced write time "
        f"{raw.write_seconds / agg.write_seconds:.0f}x — Recommendation 6, "
        "executed inside the library where the paper says it belongs."
    )
    print(
        f"placing the same checkpoint on SCNL runs it another "
        f"{agg.write_seconds / scnl.write_seconds:.1f}x faster "
        "(the in-system layer doing its job)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Survey STDIO usage the way §3.3/§3.4 of the paper does.

Generates a synthetic Summit year, then reports:

* interface shares per layer (Table 6 view) and the STDIO:POSIX ratio on
  the node-local layer;
* which science domains move data through STDIO (Figure 10 view) and the
  file extensions involved (the paper's .rst/.dat/.vol observation);
* POSIX-vs-STDIO shared-file bandwidth medians per transfer-size bin
  (Figure 11 view) with the paper's Recommendation 6 conclusion.

Run:  python examples/stdio_survey.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    interface_usage,
    performance_by_bin,
    stdio_domain_usage,
)
from repro.analysis.performance import panel
from repro.platforms.interfaces import IOInterface
from repro.units import format_count, format_size
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def main() -> int:
    gen = WorkloadGenerator("summit", GeneratorConfig(scale=5e-4))
    store = generate_with_shadows(gen, 20220627)
    print(f"generated {store!r}\n")

    # --- interface shares (Table 6 view) --------------------------------
    usage = interface_usage(store)
    print("interface usage (full-year extrapolation):")
    for layer in ("insystem", "pfs"):
        per = usage.counts[layer]
        print(
            f"  {layer:9s}: POSIX {format_count(per['POSIX'] / store.scale):>7} "
            f"MPI-IO {format_count(per['MPI-IO'] / store.scale):>7} "
            f"STDIO {format_count(per['STDIO'] / store.scale):>7}"
        )
    print(f"  STDIO share overall: {100 * usage.stdio_share():.1f}% "
          "(paper: 39.8%)")
    print(f"  STDIO:POSIX on SCNL: {usage.stdio_over_posix('insystem'):.2f}x "
          "(paper: 4.37x)\n")

    # --- domains and extensions (Figure 10 view) ------------------------
    domains = stdio_domain_usage(store)
    print("STDIO transfer by domain (top 6 by volume):")
    ranked = sorted(
        ((d, r + w) for d, (r, w) in domains.volumes.items() if d),
        key=lambda kv: -kv[1],
    )
    for domain, volume in ranked[:6]:
        print(f"  {domain:18s} {format_size(volume / store.scale)}")
    stdio_rows = store.files[
        store.files["interface"] == int(IOInterface.STDIO)
    ]
    ext_codes, counts = np.unique(
        stdio_rows["ext"][stdio_rows["ext"] >= 0], return_counts=True
    )
    ranked_ext = sorted(
        zip(ext_codes, counts), key=lambda kv: -kv[1]
    )[:5]
    total = counts.sum()
    print("\ntop STDIO file extensions "
          "(paper: ~70% .rst/.dat/.vol on Cori):")
    for code, n in ranked_ext:
        print(f"  .{store.extensions[code]:6s} {100 * n / total:5.1f}%")

    # --- performance (Figure 11 view / Recommendation 6) ----------------
    panels = performance_by_bin(store)
    print("\nshared-file bandwidth medians, POSIX vs STDIO (MB/s):")
    for layer in ("pfs", "insystem"):
        for direction in ("read", "write"):
            p = panel(panels, layer, direction)
            for bin_label in ("100M_1G", "1G_10G", "10G_100G"):
                i = p.bin_labels.index(bin_label)
                posix, stdio = p.boxes["POSIX"][i], p.boxes["STDIO"][i]
                if posix.n == 0 or stdio.n == 0:
                    continue
                print(
                    f"  {layer:9s} {direction:5s} {bin_label:8s}: "
                    f"POSIX {posix.median / 1e6:9.1f}  "
                    f"STDIO {stdio.median / 1e6:8.1f}  "
                    f"ratio {posix.median / stdio.median:6.2f}x"
                )
    print(
        "\nRecommendation 6: STDIO consistently delivers lower bandwidth "
        "than POSIX across\ntransfer sizes — aggregate text I/O inside "
        "higher-level libraries instead of\nrelying on per-call fprintf/fscanf."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

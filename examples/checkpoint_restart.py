#!/usr/bin/env python
"""A checkpointing simulation on Summit, end to end through the substrates.

This example drives the object-path stack directly — no workload
generator. It:

1. places checkpoint files on Alpine through the GPFS block-placement
   simulator (16 MiB blocks, round-robin over 154 NSDs);
2. prices each checkpoint write and restart read with the performance
   model (collective MPI-IO vs naive per-rank POSIX);
3. runs the resulting operation streams through the Darshan accumulator
   and writes a real self-describing binary log;
4. parses the log back and prints the counters the paper's analyses use.

Run:  python examples/checkpoint_restart.py
"""

from __future__ import annotations

import io

import numpy as np

from repro.darshan import (
    DarshanLog,
    JobRecord,
    ModuleId,
    NameRecord,
    read_log,
    validate_log,
    write_log,
)
from repro.darshan.accumulate import accumulate
from repro.instrument.opstream import synthesize_ops
from repro.iosim import GpfsFilesystem, PerfModel
from repro.platforms import summit
from repro.platforms.interfaces import IOInterface
from repro.units import GiB, MiB, format_size


def main() -> int:
    machine = summit()
    alpine = machine.pfs
    rng = np.random.default_rng(42)

    gpfs = GpfsFilesystem(
        nsd_count=alpine.server_count,
        block_size=alpine.params["block_size"],
    )
    perf = PerfModel()

    nprocs = 1536  # 256 nodes x 6 ranks
    ckpt_size = 64 * GiB
    nsteps = 4

    job = JobRecord(
        job_id=91_001, user_id=77, nprocs=nprocs,
        start_time=0.0, end_time=7200.0,
        platform="summit", domain="physics",
        metadata={"nnodes": "256", "exe": "gyrokinetic-sim"},
    )
    log = DarshanLog(job)

    print(f"checkpointing {nsteps} x {format_size(ckpt_size)} to Alpine "
          f"({nprocs} ranks, shared files, collective MPI-IO)\n")

    clock = 10.0
    for step in range(nsteps):
        path = f"{alpine.mount_point}/phys/ckpt_{step:03d}.h5"
        layout = gpfs.create(path, ckpt_size, rng)
        parallelism = layout.parallelism()

        coll_time = perf.single_transfer_time(
            alpine, IOInterface.MPIIO, "write",
            nbytes=ckpt_size, request_size=4 * MiB,
            nprocs=nprocs, file_parallelism=parallelism,
            shared=True, collective=True,
        )
        naive_time = perf.single_transfer_time(
            alpine, IOInterface.POSIX, "write",
            nbytes=ckpt_size, request_size=64 * 1024,
            nprocs=1, file_parallelism=parallelism,
        )
        print(
            f"  step {step}: {layout.nblocks} GPFS blocks over "
            f"{parallelism} NSDs; collective write "
            f"{coll_time:7.1f}s vs single-stream 64KiB POSIX "
            f"{naive_time:9.1f}s ({naive_time / coll_time:6.1f}x slower)"
        )

        nops = ckpt_size // (4 * MiB)
        ops = synthesize_ops(
            bytes_read=0, bytes_written=ckpt_size,
            read_ops=0, write_ops=int(nops),
            read_time=0.0, write_time=coll_time, meta_time=0.05,
            start_time=clock,
        )
        clock += coll_time + 30.0
        log.register_name(
            NameRecord.for_path(path, alpine.mount_point, "pfs")
        )
        rid = NameRecord.for_path(path).record_id
        log.add_record(
            accumulate(ModuleId.MPIIO, rid, -1, ops, collective=True)
        )
        log.add_record(accumulate(ModuleId.POSIX, rid, -1, ops))

    # Restart: read the last checkpoint back.
    restart = f"{alpine.mount_point}/phys/ckpt_{nsteps - 1:03d}.h5"
    layout = gpfs.layout(restart)
    read_time = perf.single_transfer_time(
        alpine, IOInterface.POSIX, "read",
        nbytes=ckpt_size, request_size=16 * MiB,
        nprocs=nprocs, file_parallelism=layout.parallelism(), shared=True,
    )
    print(f"\nrestart read of {format_size(ckpt_size)}: {read_time:.1f}s")

    validate_log(log)
    buf = io.BytesIO()
    write_log(log, buf)
    raw = buf.getvalue()
    buf.seek(0)
    parsed = read_log(buf)
    print(f"\nDarshan-style log: {len(raw):,} bytes on disk, "
          f"{parsed.nfiles()} files, modules "
          f"{[m.prefix for m in parsed.modules]}")
    total_read, total_written = parsed.total_bytes()
    print(f"log totals: read {format_size(total_read)}, "
          f"written {format_size(total_written)}")
    rec = parsed.records(ModuleId.POSIX)[0]
    print(f"first POSIX record: {rec['WRITES']} writes, "
          f"write bandwidth {format_size(rec.write_bandwidth())}/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: check test stress bench bench-analysis

# Fast development loop: everything except the multi-million-row stress guards.
check:
	$(PYTEST) -x -q -m "not stress"

# The full tier-1 suite, stress guards included.
test:
	$(PYTEST) -x -q

# Only the scale guards (generate + analyze millions of rows; takes minutes).
stress:
	$(PYTEST) -q -m stress tests/test_stress.py

# Full pytest-benchmark sweep over benchmarks/ (writes benchmarks/results/).
bench:
	$(PYTEST) -q benchmarks

# Just the analysis-throughput benchmark; writes BENCH_analysis.json.
bench-analysis:
	$(PYTEST) -q benchmarks/bench_facility.py

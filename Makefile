# Stable collection order and hashes across runs: the differential suite
# compares stores bit-for-bit, so the harness itself must be deterministic.
# -p no:randomly is a no-op unless pytest-randomly happens to be installed.
PYTEST = PYTHONHASHSEED=0 PYTHONPATH=src python -m pytest -p no:randomly

.PHONY: check test parallel stress bench bench-analysis bench-analysis-parallel bench-generate bench-serve serve-tests obs-tests bench-obs stream-tests bench-stream fabric-tests whatif-tests bench-whatif federation-tests bench-federation spec-tests bench-spec

# Fast development loop: everything except the multi-million-row stress
# guards and the (pool-spawning, slow on few cores) differential suite.
check:
	$(PYTEST) -x -q -m "not stress and not parallel"

# The full tier-1 suite, stress guards included.
test:
	$(PYTEST) -x -q

# Only the sharded-pipeline differential suite (serial vs jobs=N equivalence).
parallel:
	$(PYTEST) -x -q -m parallel

# Only the scale guards (generate + analyze millions of rows; takes minutes).
stress:
	$(PYTEST) -q -m stress tests/test_stress.py

# Full pytest-benchmark sweep over benchmarks/ (writes benchmarks/results/).
bench:
	$(PYTEST) -q benchmarks

# Just the analysis-throughput benchmark; writes BENCH_analysis.json.
bench-analysis:
	$(PYTEST) -q benchmarks/bench_facility.py

# Just the sharded-generation speedup benchmark; writes BENCH_generate.json.
bench-generate:
	$(PYTEST) -q benchmarks/bench_generator.py

# Serial vs sharded analysis over a cold context; writes
# BENCH_analysis_parallel.json (gated >= 2x only on >= 4-core runners).
bench-analysis-parallel:
	$(PYTEST) -q benchmarks/bench_analysis_parallel.py

# Shard-fabric unit tests: shm hand-off, pipe budget, leak-proof cleanup.
fabric-tests:
	$(PYTEST) -x -q tests/test_fabric.py

# Only the serving-subsystem invariants (coalescing/backpressure/equivalence).
serve-tests:
	$(PYTEST) -x -q tests/test_serve.py

# Closed-loop serving load generator; writes BENCH_serve.json
# (cold / warm / coalesced throughput and latency percentiles).
bench-serve:
	$(PYTEST) -q benchmarks/bench_serve.py

# Append-log ingest + delta invalidation: format/reader/ingestor units,
# the differential + property harness (incremental == cold recompute),
# serve-refresh behavior, and the hostile-tail fuzz corpus.
stream-tests:
	$(PYTEST) -x -q -m "stream and not stress"

# Streaming throughput + delta-vs-cold refresh benchmark; writes
# BENCH_stream.json and gates delta >= 5x cold on a >=100k-row store.
bench-stream:
	$(PYTEST) -q benchmarks/bench_stream.py

# What-if subsystem: scenario catalog + engine (identity differential,
# cache-semantics properties, fan-out invariance) and the activated
# fault/contention model goldens.
whatif-tests:
	$(PYTEST) -x -q tests/test_whatif.py tests/test_faults.py tests/test_contention.py

# Sweep throughput + identity/cache gates; writes BENCH_whatif.json.
bench-whatif:
	$(PYTEST) -q benchmarks/bench_whatif.py

# Multi-store federation: catalog manifest units, the K-store
# differential (catalog == merged store, bit-identical), per-member
# cache isolation, remote members, compare queries, CLI paths.
federation-tests:
	$(PYTEST) -x -q tests/test_federation.py

# Scatter-gather throughput + warm-compare cache gates; writes
# BENCH_federation.json (throughput ratio gated only on multi-core).
bench-federation:
	$(PYTEST) -q benchmarks/bench_federation.py

# Workload-spec DSL: schema/loader rejection contract, pattern compile
# units, the paper_mix byte-identity differential (jobs 1 and 4), and
# the scenario-pack goldens + end-to-end flow.
spec-tests:
	$(PYTEST) -x -q tests/test_spec.py tests/test_spec_packs.py tests/test_mixes.py

# Spec-compilation overhead gate (<= 5% over the direct archetype
# path, byte-identity asserted); writes BENCH_spec.json.
bench-spec:
	$(PYTEST) -q benchmarks/bench_spec.py

# Span-tracing subsystem + public-API surface tests (tracer semantics,
# export formats, worker round trip, --trace plumbing, API snapshot).
obs-tests:
	$(PYTEST) -x -q tests/test_obs.py tests/test_api.py

# Tracing overhead benchmark; writes BENCH_obs.json (disabled-path
# cost, enabled cost, export throughput).
bench-obs:
	$(PYTEST) -q benchmarks/bench_obs.py

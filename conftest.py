"""Repo-root pytest bootstrap for the src/ layout.

The package is not installed into the environment (the toolchain is
baked into the image, the repo is mounted), so a bare ``python -m
pytest`` needs ``src/`` on ``sys.path`` to import ``repro``.  The
Makefile exports ``PYTHONPATH=src`` for the same reason; this conftest
makes the tier-1 invocation work without it.

The repo root itself is also added so test modules can import shared
helpers from the ``tests`` package (e.g. the differential harness
reuses ``tests.test_analysis_equivalence.assert_equivalent``).
"""

import os
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
for _p in (str(_ROOT / "src"), str(_ROOT)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

# Subprocess-based tests (and CLI invocations under test) must inherit
# the same import path, so mirror it into the environment.
_src = str(_ROOT / "src")
_env = os.environ.get("PYTHONPATH", "")
if _src not in _env.split(os.pathsep):
    os.environ["PYTHONPATH"] = _src + (os.pathsep + _env if _env else "")
